"""Class-literals, class-clauses, and class-formulae (CNF over class symbols).

The paper's boolean language over class symbols is conjunctive normal form:

* a **class-literal** is ``C`` or ``¬C`` for a class symbol ``C``;
* a **class-clause** is a disjunction ``L1 ∨ … ∨ Lm`` of literals;
* a **class-formula** is a conjunction ``γ1 ∧ … ∧ γn`` of clauses.

We expose three immutable, hashable AST types plus a tiny operator DSL so that
schemas can be written naturally in Python::

    from repro.core.formulas import Lit

    person, professor = Lit("Person"), Lit("Professor")
    student_isa = (person & ~professor)          # Person ∧ ¬Professor
    teacher = professor | Lit("Grad_Student")    # Professor ∨ Grad_Student

Truth is evaluated against a set of *positive* class symbols — exactly the
truth assignment ``Φ_C̄`` a compound class induces (Section 3.1): a class is
true iff it belongs to the set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, Iterable, Union

from .errors import SchemaError

__all__ = ["Lit", "Clause", "Formula", "TOP", "as_formula", "as_clause", "FormulaLike"]


@dataclass(frozen=True, slots=True)
class Lit:
    """A class-literal: a class symbol, possibly negated.

    ``Lit("Person")`` is the positive literal, ``~Lit("Person")`` (or
    ``Lit("Person", positive=False)``) the negative one.
    """

    name: str
    positive: bool = True

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"class-literal needs a nonempty symbol name, got {self.name!r}")

    def __invert__(self) -> "Lit":
        return Lit(self.name, not self.positive)

    def __or__(self, other: Union["Lit", "Clause"]) -> "Clause":
        return as_clause(self) | other

    def __and__(self, other: "FormulaLike") -> "Formula":
        return as_formula(self) & other

    def satisfied_by(self, positive_classes: AbstractSet[str]) -> bool:
        """Truth of the literal under the assignment making exactly
        ``positive_classes`` true."""
        return (self.name in positive_classes) == self.positive

    def __str__(self) -> str:
        return self.name if self.positive else f"not {self.name}"


@dataclass(frozen=True, slots=True)
class Clause:
    """A class-clause: a disjunction of class-literals.

    Literals are stored deduplicated in a canonical (sorted) order so that
    clauses compare and hash structurally.  The empty clause is ``false``.
    """

    literals: tuple[Lit, ...]

    def __post_init__(self) -> None:
        seen: dict[Lit, None] = {}
        for lit in self.literals:
            if not isinstance(lit, Lit):
                raise SchemaError(f"clause members must be class-literals, got {lit!r}")
            seen.setdefault(lit, None)
        canonical = tuple(sorted(seen, key=lambda lt: (lt.name, not lt.positive)))
        object.__setattr__(self, "literals", canonical)

    def __or__(self, other: Union[Lit, "Clause"]) -> "Clause":
        if isinstance(other, Lit):
            return Clause(self.literals + (other,))
        if isinstance(other, Clause):
            return Clause(self.literals + other.literals)
        return NotImplemented

    def __and__(self, other: "FormulaLike") -> "Formula":
        return as_formula(self) & other

    def __iter__(self):
        return iter(self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def is_tautology(self) -> bool:
        """True when the clause contains a literal and its negation."""
        positive = {lit.name for lit in self.literals if lit.positive}
        return any(not lit.positive and lit.name in positive for lit in self.literals)

    def satisfied_by(self, positive_classes: AbstractSet[str]) -> bool:
        """Truth under the assignment making exactly ``positive_classes`` true."""
        return any(lit.satisfied_by(positive_classes) for lit in self.literals)

    def classes(self) -> frozenset[str]:
        """All class symbols mentioned (positively or negatively)."""
        return frozenset(lit.name for lit in self.literals)

    def __str__(self) -> str:
        if not self.literals:
            return "false"
        return " or ".join(str(lit) for lit in self.literals)


@dataclass(frozen=True, slots=True)
class Formula:
    """A class-formula: a conjunction of class-clauses (CNF).

    Clauses are stored deduplicated in a canonical order.  The empty
    conjunction is ``true`` (exported as :data:`TOP`).
    """

    clauses: tuple[Clause, ...]

    def __post_init__(self) -> None:
        seen: dict[Clause, None] = {}
        for clause in self.clauses:
            if not isinstance(clause, Clause):
                raise SchemaError(f"formula members must be class-clauses, got {clause!r}")
            seen.setdefault(clause, None)
        canonical = tuple(sorted(seen, key=lambda c: tuple((lt.name, not lt.positive) for lt in c)))
        object.__setattr__(self, "clauses", canonical)

    def __and__(self, other: "FormulaLike") -> "Formula":
        return Formula(self.clauses + as_formula(other).clauses)

    def __iter__(self):
        return iter(self.clauses)

    def __len__(self) -> int:
        return len(self.clauses)

    def is_trivially_true(self) -> bool:
        """True for the empty conjunction or when every clause is a tautology."""
        return all(clause.is_tautology() for clause in self.clauses)

    def satisfied_by(self, positive_classes: AbstractSet[str]) -> bool:
        """Truth under the assignment making exactly ``positive_classes`` true.

        This is the paper's "``C̄`` realizes ``F``" test when called with a
        compound class's member set.
        """
        return all(clause.satisfied_by(positive_classes) for clause in self.clauses)

    def classes(self) -> frozenset[str]:
        """All class symbols mentioned (positively or negatively)."""
        result: set[str] = set()
        for clause in self.clauses:
            result.update(clause.classes())
        return frozenset(result)

    def positive_classes(self) -> frozenset[str]:
        """Class symbols that occur positively in some clause."""
        return frozenset(
            lit.name for clause in self.clauses for lit in clause if lit.positive
        )

    def negative_classes(self) -> frozenset[str]:
        """Class symbols that occur negated in some clause."""
        return frozenset(
            lit.name for clause in self.clauses for lit in clause if not lit.positive
        )

    def is_union_free(self) -> bool:
        """True when every clause consists of a single literal (Section 4.1)."""
        return all(len(clause) == 1 for clause in self.clauses)

    def is_negation_free(self) -> bool:
        """True when the symbol ``¬`` does not appear (Section 4.1)."""
        return all(lit.positive for clause in self.clauses for lit in clause)

    def __str__(self) -> str:
        if not self.clauses:
            return "true"
        parts = []
        for clause in self.clauses:
            rendered = str(clause)
            parts.append(f"({rendered})" if len(clause) > 1 else rendered)
        return " and ".join(parts)


#: The empty conjunction — satisfied by every object.
TOP = Formula(())

#: Anything coercible to a :class:`Formula` by :func:`as_formula`.
FormulaLike = Union[str, Lit, Clause, Formula]


def as_clause(value: Union[str, Lit, Clause]) -> Clause:
    """Coerce a symbol name, literal, or clause to a :class:`Clause`."""
    if isinstance(value, Clause):
        return value
    if isinstance(value, Lit):
        return Clause((value,))
    if isinstance(value, str):
        return Clause((Lit(value),))
    raise SchemaError(f"cannot interpret {value!r} as a class-clause")


def as_formula(value: FormulaLike) -> Formula:
    """Coerce a symbol name, literal, or clause to a :class:`Formula`."""
    if isinstance(value, Formula):
        return value
    if isinstance(value, (str, Lit, Clause)):
        return Formula((as_clause(value),))
    raise SchemaError(f"cannot interpret {value!r} as a class-formula")


def conjunction(parts: Iterable[FormulaLike]) -> Formula:
    """Conjunction of arbitrarily many formula-like values (``TOP`` if empty)."""
    result = TOP
    for part in parts:
        result = result & part
    return result


def disjunction(parts: Iterable[Union[str, Lit]]) -> Clause:
    """Disjunction of class symbols / literals as a single clause."""
    literals: list[Lit] = []
    for part in parts:
        if isinstance(part, str):
            literals.append(Lit(part))
        elif isinstance(part, Lit):
            literals.append(part)
        else:
            raise SchemaError(f"cannot interpret {part!r} as a class-literal")
    return Clause(tuple(literals))


__all__ += ["conjunction", "disjunction"]
