"""Cardinality intervals ``(u, v)`` with an unbounded upper end.

The paper writes cardinality constraints as pairs ``(u, v)`` where ``u`` is a
nonnegative integer and ``v`` is a nonnegative integer or the special value
``infinity``.  We model the interval as an immutable :class:`Card` value with
``lower: int`` and ``upper: int | None`` (``None`` encodes ``infinity``), plus
the interval algebra the expansion needs:

* :meth:`Card.intersect` — conjunction of two constraints on the same links,
  used to build ``Natt`` / ``Nrel`` (``u_max`` / ``v_min`` of Definition 3.1);
* :meth:`Card.contains` — membership test for a concrete link count;
* :meth:`Card.is_empty` — an unsatisfiable interval such as ``(2, 1)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import SchemaError

__all__ = ["Card", "INFINITY", "ANY", "EXACTLY_ONE", "AT_MOST_ONE", "AT_LEAST_ONE"]

#: Sentinel rendered as the paper's ``infinity`` upper bound.
INFINITY = None


@dataclass(frozen=True, slots=True)
class Card:
    """An immutable cardinality interval ``(lower, upper)``.

    ``upper is None`` means the interval is unbounded above (the paper's
    ``infinity``).  Instances are validated on construction: ``lower`` must be
    a nonnegative ``int`` and ``upper`` a nonnegative ``int`` or ``None``.
    An *empty* interval (``lower > upper``) is representable — it arises
    naturally when merging constraints in the expansion — but cannot be
    *declared* in a schema (see :meth:`validate_declared`).
    """

    lower: int
    upper: int | None = INFINITY

    def __post_init__(self) -> None:
        if not isinstance(self.lower, int) or isinstance(self.lower, bool):
            raise SchemaError(f"cardinality lower bound must be an int, got {self.lower!r}")
        if self.lower < 0:
            raise SchemaError(f"cardinality lower bound must be nonnegative, got {self.lower}")
        if self.upper is not INFINITY:
            if not isinstance(self.upper, int) or isinstance(self.upper, bool):
                raise SchemaError(
                    f"cardinality upper bound must be an int or None, got {self.upper!r}"
                )
            if self.upper < 0:
                raise SchemaError(f"cardinality upper bound must be nonnegative, got {self.upper}")

    # ------------------------------------------------------------------
    # Predicates
    # ------------------------------------------------------------------
    @property
    def unbounded(self) -> bool:
        """True when the upper end is the paper's ``infinity``."""
        return self.upper is INFINITY

    def is_empty(self) -> bool:
        """True when no link count can satisfy the interval."""
        return self.upper is not INFINITY and self.lower > self.upper

    def contains(self, count: int) -> bool:
        """True when ``count`` links satisfy the constraint."""
        if count < self.lower:
            return False
        return self.upper is INFINITY or count <= self.upper

    def validate_declared(self) -> "Card":
        """Check that the interval is legal *as written in a schema*.

        Schemas must not declare inverted intervals such as ``(2, 1)``;
        returns ``self`` for chaining.
        """
        if self.is_empty():
            raise SchemaError(f"declared cardinality {self} has lower bound above upper bound")
        return self

    # ------------------------------------------------------------------
    # Interval algebra
    # ------------------------------------------------------------------
    def intersect(self, other: "Card") -> "Card":
        """Conjunction of two constraints on the same set of links.

        This is exactly the ``(u_max, v_min)`` merge of Definition 3.1:
        the result's lower bound is the max of the lower bounds and its upper
        bound the min of the upper bounds.  The result may be empty.
        """
        lower = max(self.lower, other.lower)
        if self.upper is INFINITY:
            upper = other.upper
        elif other.upper is INFINITY:
            upper = self.upper
        else:
            upper = min(self.upper, other.upper)
        return Card(lower, upper)

    def widen(self, other: "Card") -> "Card":
        """Smallest interval containing both operands (interval hull)."""
        lower = min(self.lower, other.lower)
        if self.upper is INFINITY or other.upper is INFINITY:
            upper: int | None = INFINITY
        else:
            upper = max(self.upper, other.upper)
        return Card(lower, upper)

    def refines(self, other: "Card") -> bool:
        """True when this interval is contained in ``other``.

        Used to check that a subclass's cardinality constraint genuinely
        *refines* the inherited one (e.g. ``Grad_Student`` refining the
        enrolment bounds of ``Student`` in Figure 2).
        """
        if self.lower < other.lower:
            return False
        if other.upper is INFINITY:
            return True
        if self.upper is INFINITY:
            return False
        return self.upper <= other.upper

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        upper = "*" if self.upper is INFINITY else str(self.upper)
        return f"({self.lower}, {upper})"


#: Unconstrained interval ``(0, infinity)``.
ANY = Card(0, INFINITY)
#: Mandatory single-valued link, the paper's ``(1, 1)``.
EXACTLY_ONE = Card(1, 1)
#: Optional single-valued link, the paper's ``(0, 1)``.
AT_MOST_ONE = Card(0, 1)
#: Mandatory multi-valued link, ``(1, infinity)``.
AT_LEAST_ONE = Card(1, INFINITY)
