"""A fluent builder for constructing CAR schemas programmatically.

The AST constructors in :mod:`repro.core.schema` are immutable and
positional; for generated schemas (migrations, reductions, tests) a mutable
builder with chained calls reads better::

    schema = (SchemaBuilder()
              .cls("Person")
              .cls("Student").isa("Person").isa_not("Professor")
                  .attr("student_id", Card(1, 1), "String")
                  .takes_part("Enrollment", "enrolls", Card(1, 6))
              .cls("Professor").isa("Person")
              .rel("Enrollment", "enrolled_in", "enrolls")
                  .role("enrolled_in", "Course")
                  .role("enrolls", "Student")
              .build())

Each ``cls``/``rel`` call opens a new definition; the chained refinement
methods apply to the most recently opened one.  ``build()`` validates the
whole schema via the :class:`~repro.core.schema.Schema` constructor.
"""

from __future__ import annotations

from typing import Optional, Union

from .cardinality import ANY, Card
from .errors import SchemaError
from .formulas import Clause, Formula, FormulaLike, Lit, TOP, as_formula
from .schema import (
    AttrRef,
    AttributeSpec,
    ClassDef,
    ParticipationSpec,
    RelationDef,
    RoleClause,
    RoleLiteral,
    Schema,
)

__all__ = ["SchemaBuilder"]


class _ClassDraft:
    def __init__(self, name: str):
        self.name = name
        self.isa: Formula = TOP
        self.attributes: list[AttributeSpec] = []
        self.participations: list[ParticipationSpec] = []

    def finish(self) -> ClassDef:
        return ClassDef(self.name, self.isa, self.attributes,
                        self.participations)


class _RelationDraft:
    def __init__(self, name: str, roles: tuple[str, ...]):
        self.name = name
        self.roles = roles
        self.constraints: list[RoleClause] = []

    def finish(self) -> RelationDef:
        return RelationDef(self.name, self.roles, self.constraints)


class SchemaBuilder:
    """Accumulates class and relation definitions, then validates them."""

    def __init__(self):
        self._classes: list[_ClassDraft] = []
        self._relations: list[_RelationDraft] = []
        self._current: Optional[Union[_ClassDraft, _RelationDraft]] = None

    # ------------------------------------------------------------------
    # Opening definitions
    # ------------------------------------------------------------------
    def cls(self, name: str) -> "SchemaBuilder":
        """Open a new class definition."""
        draft = _ClassDraft(name)
        self._classes.append(draft)
        self._current = draft
        return self

    def rel(self, name: str, *roles: str) -> "SchemaBuilder":
        """Open a new relation definition over the given roles."""
        draft = _RelationDraft(name, tuple(roles))
        self._relations.append(draft)
        self._current = draft
        return self

    # ------------------------------------------------------------------
    # Refining the open definition
    # ------------------------------------------------------------------
    def _class_draft(self) -> _ClassDraft:
        if not isinstance(self._current, _ClassDraft):
            raise SchemaError("no class definition is open; call .cls() first")
        return self._current

    def _relation_draft(self) -> _RelationDraft:
        if not isinstance(self._current, _RelationDraft):
            raise SchemaError("no relation definition is open; call .rel() first")
        return self._current

    def isa(self, formula: FormulaLike) -> "SchemaBuilder":
        """Conjoin a formula to the open class's isa part."""
        draft = self._class_draft()
        draft.isa = draft.isa & as_formula(formula)
        return self

    def isa_not(self, class_name: str) -> "SchemaBuilder":
        """Declare the open class disjoint from ``class_name``."""
        return self.isa(Clause((Lit(class_name, positive=False),)))

    def isa_one_of(self, *class_names: str) -> "SchemaBuilder":
        """Require membership in at least one of the given classes."""
        return self.isa(Clause(tuple(Lit(name) for name in class_names)))

    def attr(self, name: str, card: Card = ANY,
             filler: FormulaLike = TOP) -> "SchemaBuilder":
        """Add an attribute spec ``name : card filler`` to the open class."""
        self._class_draft().attributes.append(AttributeSpec(name, card, filler))
        return self

    def inv_attr(self, name: str, card: Card = ANY,
                 filler: FormulaLike = TOP) -> "SchemaBuilder":
        """Add an inverse-attribute spec ``(inv name) : card filler``."""
        self._class_draft().attributes.append(
            AttributeSpec(AttrRef(name, inverse=True), card, filler))
        return self

    def takes_part(self, relation: str, role: str,
                   card: Card) -> "SchemaBuilder":
        """Add a participation constraint ``relation[role] : card``."""
        self._class_draft().participations.append(
            ParticipationSpec(relation, role, card))
        return self

    def role(self, role_name: str, formula: FormulaLike) -> "SchemaBuilder":
        """Add a single-literal role-clause to the open relation."""
        self._relation_draft().constraints.append(
            RoleClause(RoleLiteral(role_name, formula)))
        return self

    def role_clause(self, *literals: tuple[str, FormulaLike]) -> "SchemaBuilder":
        """Add a disjunctive role-clause ``(U1 : F1) ∨ … ∨ (Us : Fs)``."""
        self._relation_draft().constraints.append(
            RoleClause(*(RoleLiteral(role, formula)
                         for role, formula in literals)))
        return self

    # ------------------------------------------------------------------
    def build(self) -> Schema:
        """Validate and return the schema."""
        return Schema([draft.finish() for draft in self._classes],
                      [draft.finish() for draft in self._relations])
