"""JSON (de)serialization for schemas and interpretations.

The concrete CAR syntax is the human format; this module is the machine
format: stable, versioned dictionaries suitable for storing schemas in
catalogs, shipping them over APIs, and snapshotting database states.

``schema_to_dict`` / ``schema_from_dict`` round-trip to identical ASTs, as
do ``interpretation_to_dict`` / ``interpretation_from_dict`` (for
interpretations whose objects are strings or integers — JSON's scalar
universe).  A ``format`` tag guards against loading foreign documents.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from .cardinality import Card, INFINITY
from .errors import SchemaError, SemanticsError
from .formulas import Clause, Formula, Lit
from .schema import (
    AttrRef,
    AttributeSpec,
    ClassDef,
    ParticipationSpec,
    RelationDef,
    RoleClause,
    RoleLiteral,
    Schema,
)

__all__ = [
    "SCHEMA_FORMAT", "INTERPRETATION_FORMAT",
    "schema_to_dict", "schema_from_dict", "schema_to_json", "schema_from_json",
    "interpretation_to_dict", "interpretation_from_dict",
]

SCHEMA_FORMAT = "car-schema/1"
INTERPRETATION_FORMAT = "car-interpretation/1"


# ----------------------------------------------------------------------
# Formulae and cardinalities
# ----------------------------------------------------------------------
def _card_to_list(card: Card) -> list:
    return [card.lower, None if card.upper is INFINITY else card.upper]


def _card_from_list(value: Any) -> Card:
    if not isinstance(value, (list, tuple)) or len(value) != 2:
        raise SchemaError(f"cardinality must be a [lower, upper] pair, got {value!r}")
    return Card(value[0], value[1])


def _formula_to_list(formula: Formula) -> list:
    return [[[lit.name, lit.positive] for lit in clause] for clause in formula]


def _formula_from_list(value: Any) -> Formula:
    if not isinstance(value, list):
        raise SchemaError(f"formula must be a list of clauses, got {value!r}")
    clauses = []
    for clause in value:
        literals = tuple(Lit(name, bool(positive)) for name, positive in clause)
        clauses.append(Clause(literals))
    return Formula(tuple(clauses))


# ----------------------------------------------------------------------
# Schemas
# ----------------------------------------------------------------------
def schema_to_dict(schema: Schema) -> dict:
    """A JSON-compatible dictionary for the schema."""
    return {
        "format": SCHEMA_FORMAT,
        "classes": [
            {
                "name": cdef.name,
                "isa": _formula_to_list(cdef.isa),
                "attributes": [
                    {
                        "attribute": spec.ref.name,
                        "inverse": spec.ref.inverse,
                        "card": _card_to_list(spec.card),
                        "filler": _formula_to_list(spec.filler),
                    }
                    for spec in cdef.attributes
                ],
                "participates": [
                    {
                        "relation": spec.relation,
                        "role": spec.role,
                        "card": _card_to_list(spec.card),
                    }
                    for spec in cdef.participates
                ],
            }
            for cdef in schema.class_definitions
        ],
        "relations": [
            {
                "name": rdef.name,
                "roles": list(rdef.roles),
                "constraints": [
                    [
                        {"role": lit.role, "formula": _formula_to_list(lit.formula)}
                        for lit in clause
                    ]
                    for clause in rdef.constraints
                ],
            }
            for rdef in schema.relation_definitions
        ],
    }


def schema_from_dict(data: Mapping) -> Schema:
    """Rebuild a schema from :func:`schema_to_dict` output."""
    if data.get("format") != SCHEMA_FORMAT:
        raise SchemaError(
            f"not a {SCHEMA_FORMAT} document (format={data.get('format')!r})")
    classes = []
    for entry in data.get("classes", ()):
        attributes = [
            AttributeSpec(
                AttrRef(item["attribute"], bool(item.get("inverse", False))),
                _card_from_list(item["card"]),
                _formula_from_list(item["filler"]),
            )
            for item in entry.get("attributes", ())
        ]
        participates = [
            ParticipationSpec(item["relation"], item["role"],
                              _card_from_list(item["card"]))
            for item in entry.get("participates", ())
        ]
        classes.append(ClassDef(entry["name"],
                                _formula_from_list(entry.get("isa", [])),
                                attributes, participates))
    relations = []
    for entry in data.get("relations", ()):
        constraints = [
            RoleClause(*(RoleLiteral(lit["role"],
                                     _formula_from_list(lit["formula"]))
                         for lit in clause))
            for clause in entry.get("constraints", ())
        ]
        relations.append(RelationDef(entry["name"], entry["roles"], constraints))
    return Schema(classes, relations)


def schema_to_json(schema: Schema, **dumps_kwargs: Any) -> str:
    """The schema as a JSON string (``indent=2`` by default)."""
    dumps_kwargs.setdefault("indent", 2)
    dumps_kwargs.setdefault("sort_keys", True)
    return json.dumps(schema_to_dict(schema), **dumps_kwargs)


def schema_from_json(text: str) -> Schema:
    return schema_from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Interpretations
# ----------------------------------------------------------------------
def interpretation_to_dict(interp) -> dict:
    """A JSON-compatible snapshot of a database state.

    Objects must be JSON scalars (strings, ints, bools); anything else is
    rejected so that the round trip stays faithful.
    """
    from ..semantics.interpretation import Interpretation

    if not isinstance(interp, Interpretation):
        raise SemanticsError(f"expected an Interpretation, got {interp!r}")

    def check(obj):
        if not isinstance(obj, (str, int, bool)):
            raise SemanticsError(
                f"object {obj!r} is not JSON-scalar; relabel before export")
        return obj

    return {
        "format": INTERPRETATION_FORMAT,
        "universe": sorted((check(o) for o in interp.universe), key=repr),
        "classes": {
            name: sorted(interp.class_ext(name), key=repr)
            for name in sorted(interp.mentioned_classes())
        },
        "attributes": {
            name: sorted(([a, b] for a, b in interp.attribute_ext(name)),
                         key=repr)
            for name in sorted(interp.mentioned_attributes())
        },
        "relations": {
            name: sorted((dict(t.items) for t in interp.relation_ext(name)),
                         key=repr)
            for name in sorted(interp.mentioned_relations())
        },
    }


def interpretation_from_dict(data: Mapping):
    """Rebuild an interpretation from :func:`interpretation_to_dict`."""
    from ..semantics.interpretation import Interpretation, LabeledTuple

    if data.get("format") != INTERPRETATION_FORMAT:
        raise SemanticsError(
            f"not a {INTERPRETATION_FORMAT} document "
            f"(format={data.get('format')!r})")
    return Interpretation(
        data["universe"],
        {name: set(ext) for name, ext in data.get("classes", {}).items()},
        {name: {(a, b) for a, b in ext}
         for name, ext in data.get("attributes", {}).items()},
        {name: {LabeledTuple(t) for t in ext}
         for name, ext in data.get("relations", {}).items()},
    )
