"""Core AST of the CAR data model: formulae, cardinalities, schemas."""

from .budget import NULL_BUDGET, Budget, current_budget, use_budget
from .builder import SchemaBuilder
from .cardinality import ANY, AT_LEAST_ONE, AT_MOST_ONE, EXACTLY_ONE, INFINITY, Card
from .io_json import (
    interpretation_from_dict,
    interpretation_to_dict,
    schema_from_dict,
    schema_from_json,
    schema_to_dict,
    schema_to_json,
)
from .errors import (
    BudgetExceeded,
    CarError,
    LinearSystemError,
    ParseError,
    ReasoningError,
    SchemaError,
    SemanticsError,
    SynthesisError,
)
from .formulas import (
    TOP,
    Clause,
    Formula,
    Lit,
    as_clause,
    as_formula,
    conjunction,
    disjunction,
)
from .schema import (
    Attr,
    AttrRef,
    AttributeSpec,
    ClassDef,
    Part,
    ParticipationSpec,
    RelationDef,
    RoleClause,
    RoleLiteral,
    Schema,
    inv,
)

__all__ = [
    "SchemaBuilder",
    "NULL_BUDGET", "Budget", "current_budget", "use_budget",
    "interpretation_from_dict", "interpretation_to_dict",
    "schema_from_dict", "schema_from_json", "schema_to_dict",
    "schema_to_json",
    "ANY", "AT_LEAST_ONE", "AT_MOST_ONE", "EXACTLY_ONE", "INFINITY", "Card",
    "BudgetExceeded", "CarError", "LinearSystemError", "ParseError",
    "ReasoningError", "SchemaError", "SemanticsError", "SynthesisError",
    "TOP", "Clause", "Formula", "Lit", "as_clause", "as_formula",
    "conjunction", "disjunction",
    "Attr", "AttrRef", "AttributeSpec", "ClassDef", "Part",
    "ParticipationSpec", "RelationDef", "RoleClause", "RoleLiteral",
    "Schema", "inv",
]
