"""CAR schema AST: class definitions, relation definitions, whole schemas.

A CAR schema (Section 2.2 of the paper) is a collection of *class
definitions* and *relation definitions* over an alphabet partitioned into
class symbols ``C``, attribute symbols ``A``, relation symbols ``R``, and
role symbols ``U``.  This module provides immutable definition objects plus
the :class:`Schema` container, which validates all cross-references on
construction and exposes the derived alphabets.

The ergonomic aliases :data:`Attr`, :data:`Part`, :func:`inv` let schemas be
written compactly::

    course = ClassDef(
        "Course",
        isa=~Lit("Person"),
        attributes=[Attr("taught_by", Card(1, 1), Lit("Professor") | Lit("Grad_Student"))],
        participates=[Part("Enrollment", "enrolled_in", Card(5, 100))],
    )
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Optional, Sequence, Union

from .cardinality import ANY, Card
from .errors import SchemaError
from .formulas import TOP, Formula, FormulaLike, as_formula

__all__ = [
    "AttrRef",
    "inv",
    "AttributeSpec",
    "Attr",
    "ParticipationSpec",
    "Part",
    "ClassDef",
    "RoleLiteral",
    "RoleClause",
    "RelationDef",
    "Schema",
]


# ----------------------------------------------------------------------
# Attribute references:  A  or  (inv A)
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class AttrRef:
    """Reference to an attribute function: the attribute itself or its inverse.

    ``AttrRef("teaches")`` denotes the function of attribute ``teaches``;
    ``AttrRef("teaches", inverse=True)`` denotes ``(inv teaches)``.
    """

    name: str
    inverse: bool = False

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"attribute reference needs a nonempty name, got {self.name!r}")

    def flipped(self) -> "AttrRef":
        """The reference to the opposite direction of the same attribute."""
        return AttrRef(self.name, not self.inverse)

    def __str__(self) -> str:
        return f"(inv {self.name})" if self.inverse else self.name


def inv(name: str) -> AttrRef:
    """Shorthand for the inverse-attribute reference ``(inv name)``."""
    return AttrRef(name, inverse=True)


def _as_attr_ref(value: Union[str, AttrRef]) -> AttrRef:
    if isinstance(value, AttrRef):
        return value
    if isinstance(value, str):
        return AttrRef(value)
    raise SchemaError(f"cannot interpret {value!r} as an attribute reference")


# ----------------------------------------------------------------------
# Pieces of a class definition
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class AttributeSpec:
    """One line of an ``attributes`` part: ``att : (u, v) F``.

    Every instance of the defined class must have between ``card.lower`` and
    ``card.upper`` links through ``ref``, all of whose fillers are instances
    of ``filler``.
    """

    ref: AttrRef
    card: Card
    filler: Formula

    def __init__(self, ref: Union[str, AttrRef], card: Card = ANY,
                 filler: FormulaLike = TOP):
        object.__setattr__(self, "ref", _as_attr_ref(ref))
        if not isinstance(card, Card):
            raise SchemaError(f"attribute cardinality must be a Card, got {card!r}")
        object.__setattr__(self, "card", card.validate_declared())
        object.__setattr__(self, "filler", as_formula(filler))

    def __str__(self) -> str:
        return f"{self.ref} : {self.card} {self.filler}"


@dataclass(frozen=True, slots=True)
class ParticipationSpec:
    """One line of a ``participates in`` part: ``R[U] : (x, y)``.

    Every instance of the defined class must occur in between ``card.lower``
    and ``card.upper`` tuples of relation ``relation`` in role ``role``.
    """

    relation: str
    role: str
    card: Card

    def __init__(self, relation: str, role: str, card: Card = ANY):
        if not relation or not isinstance(relation, str):
            raise SchemaError(f"participation needs a relation name, got {relation!r}")
        if not role or not isinstance(role, str):
            raise SchemaError(f"participation needs a role name, got {role!r}")
        if not isinstance(card, Card):
            raise SchemaError(f"participation cardinality must be a Card, got {card!r}")
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "role", role)
        object.__setattr__(self, "card", card.validate_declared())

    def __str__(self) -> str:
        return f"{self.relation}[{self.role}] : {self.card}"


#: Ergonomic aliases used throughout examples and tests.
Attr = AttributeSpec
Part = ParticipationSpec


@dataclass(frozen=True)
class ClassDef:
    """A class definition: name, isa-formula, attribute and participation parts.

    Attribute references must be pairwise distinct within one definition (an
    assumption the paper makes explicitly); the same holds for
    ``(relation, role)`` pairs in the participation part.
    """

    name: str
    isa: Formula = TOP
    attributes: tuple[AttributeSpec, ...] = ()
    participates: tuple[ParticipationSpec, ...] = ()

    def __init__(self, name: str, isa: FormulaLike = TOP,
                 attributes: Sequence[AttributeSpec] = (),
                 participates: Sequence[ParticipationSpec] = ()):
        if not name or not isinstance(name, str):
            raise SchemaError(f"class definition needs a nonempty name, got {name!r}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "isa", as_formula(isa))
        attrs = tuple(attributes)
        parts = tuple(participates)
        for spec in attrs:
            if not isinstance(spec, AttributeSpec):
                raise SchemaError(f"attributes of {name} must be AttributeSpec, got {spec!r}")
        for spec in parts:
            if not isinstance(spec, ParticipationSpec):
                raise SchemaError(
                    f"participations of {name} must be ParticipationSpec, got {spec!r}"
                )
        refs = [spec.ref for spec in attrs]
        if len(refs) != len(set(refs)):
            raise SchemaError(f"class {name} mentions the same attribute reference twice")
        slots = [(spec.relation, spec.role) for spec in parts]
        if len(slots) != len(set(slots)):
            raise SchemaError(f"class {name} constrains the same relation role twice")
        object.__setattr__(self, "attributes", attrs)
        object.__setattr__(self, "participates", parts)

    # ------------------------------------------------------------------
    @property
    def attribute_specs(self) -> Mapping[AttrRef, AttributeSpec]:
        """Attribute specs indexed by reference."""
        return {spec.ref: spec for spec in self.attributes}

    @property
    def participation_specs(self) -> Mapping[tuple[str, str], ParticipationSpec]:
        """Participation specs indexed by ``(relation, role)``."""
        return {(spec.relation, spec.role): spec for spec in self.participates}

    def mentioned_classes(self) -> frozenset[str]:
        """Class symbols occurring in the isa part or any attribute filler."""
        mentioned = set(self.isa.classes())
        for spec in self.attributes:
            mentioned.update(spec.filler.classes())
        return frozenset(mentioned)

    def syntactic_size(self) -> int:
        """Number of symbol occurrences, the paper's measure of schema size."""
        size = 1 + sum(len(clause) for clause in self.isa)
        for spec in self.attributes:
            size += 3 + sum(len(clause) for clause in spec.filler)
        size += 4 * len(self.participates)
        return size

    def replace(self, *, isa: Optional[FormulaLike] = None,
                attributes: Optional[Sequence[AttributeSpec]] = None,
                participates: Optional[Sequence[ParticipationSpec]] = None) -> "ClassDef":
        """A copy of this definition with some parts substituted."""
        return ClassDef(
            self.name,
            isa=self.isa if isa is None else isa,
            attributes=self.attributes if attributes is None else attributes,
            participates=self.participates if participates is None else participates,
        )


# ----------------------------------------------------------------------
# Pieces of a relation definition
# ----------------------------------------------------------------------
@dataclass(frozen=True, slots=True)
class RoleLiteral:
    """A role-literal ``(U : F)``: the ``U``-component is an instance of ``F``."""

    role: str
    formula: Formula

    def __init__(self, role: str, formula: FormulaLike = TOP):
        if not role or not isinstance(role, str):
            raise SchemaError(f"role-literal needs a role name, got {role!r}")
        object.__setattr__(self, "role", role)
        object.__setattr__(self, "formula", as_formula(formula))

    def __str__(self) -> str:
        return f"({self.role} : {self.formula})"


@dataclass(frozen=True, slots=True)
class RoleClause:
    """A role-clause ``(U1 : F1) ∨ … ∨ (Us : Fs)`` over pairwise distinct roles."""

    literals: tuple[RoleLiteral, ...]

    def __init__(self, *literals: RoleLiteral):
        if len(literals) == 1 and isinstance(literals[0], (list, tuple)):
            literals = tuple(literals[0])
        for lit in literals:
            if not isinstance(lit, RoleLiteral):
                raise SchemaError(f"role-clause members must be RoleLiteral, got {lit!r}")
        roles = [lit.role for lit in literals]
        if len(roles) != len(set(roles)):
            raise SchemaError("role-clause mentions the same role twice")
        if not literals:
            raise SchemaError("role-clause must contain at least one role-literal")
        object.__setattr__(self, "literals", tuple(literals))

    def __iter__(self):
        return iter(self.literals)

    def __len__(self) -> int:
        return len(self.literals)

    def roles(self) -> frozenset[str]:
        return frozenset(lit.role for lit in self.literals)

    def __str__(self) -> str:
        return " or ".join(str(lit) for lit in self.literals)


@dataclass(frozen=True)
class RelationDef:
    """A relation definition: name, role tuple, and role-clause constraints."""

    name: str
    roles: tuple[str, ...]
    constraints: tuple[RoleClause, ...] = ()

    def __init__(self, name: str, roles: Sequence[str],
                 constraints: Sequence[RoleClause] = ()):
        if not name or not isinstance(name, str):
            raise SchemaError(f"relation definition needs a nonempty name, got {name!r}")
        roles = tuple(roles)
        if not roles:
            raise SchemaError(f"relation {name} needs at least one role")
        if len(roles) != len(set(roles)):
            raise SchemaError(f"relation {name} has duplicate role symbols")
        normalized: list[RoleClause] = []
        for clause in constraints:
            if isinstance(clause, RoleLiteral):
                clause = RoleClause(clause)
            if not isinstance(clause, RoleClause):
                raise SchemaError(
                    f"constraints of relation {name} must be RoleClause, got {clause!r}"
                )
            undeclared = clause.roles() - set(roles)
            if undeclared:
                raise SchemaError(
                    f"relation {name} constraint mentions undeclared roles {sorted(undeclared)}"
                )
            normalized.append(clause)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "roles", roles)
        object.__setattr__(self, "constraints", tuple(normalized))

    @property
    def arity(self) -> int:
        return len(self.roles)

    def mentioned_classes(self) -> frozenset[str]:
        """Class symbols occurring in any role-clause."""
        mentioned: set[str] = set()
        for clause in self.constraints:
            for lit in clause:
                mentioned.update(lit.formula.classes())
        return frozenset(mentioned)

    def syntactic_size(self) -> int:
        size = 1 + len(self.roles)
        for clause in self.constraints:
            for lit in clause:
                size += 1 + sum(len(c) for c in lit.formula)
        return size


# ----------------------------------------------------------------------
# The schema container
# ----------------------------------------------------------------------
class Schema:
    """A CAR schema: a validated collection of class and relation definitions.

    Class symbols may occur in formulae without having an explicit
    definition; they are then *primitive* classes with the trivial definition
    ``isa true``.  Relations referenced by participation specs, in contrast,
    must be defined (their role set is needed).  The constructor checks:

    * no duplicate class or relation definitions;
    * class, attribute, and relation alphabets are pairwise disjoint;
    * every participation references a defined relation and a declared role.
    """

    def __init__(self, classes: Iterable[ClassDef] = (),
                 relations: Iterable[RelationDef] = ()):
        self._classes: dict[str, ClassDef] = {}
        self._relations: dict[str, RelationDef] = {}
        for cdef in classes:
            if not isinstance(cdef, ClassDef):
                raise SchemaError(f"expected a ClassDef, got {cdef!r}")
            if cdef.name in self._classes:
                raise SchemaError(f"duplicate definition of class {cdef.name}")
            self._classes[cdef.name] = cdef
        for rdef in relations:
            if not isinstance(rdef, RelationDef):
                raise SchemaError(f"expected a RelationDef, got {rdef!r}")
            if rdef.name in self._relations:
                raise SchemaError(f"duplicate definition of relation {rdef.name}")
            self._relations[rdef.name] = rdef
        self._validate()
        self._class_symbols = self._collect_class_symbols()
        self._attribute_symbols = frozenset(
            spec.ref.name for cdef in self._classes.values() for spec in cdef.attributes
        )
        self._check_alphabet_partition()

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        for cdef in self._classes.values():
            for spec in cdef.participates:
                rdef = self._relations.get(spec.relation)
                if rdef is None:
                    raise SchemaError(
                        f"class {cdef.name} participates in undefined relation {spec.relation}"
                    )
                if spec.role not in rdef.roles:
                    raise SchemaError(
                        f"class {cdef.name} participates in {spec.relation}[{spec.role}], "
                        f"but {spec.relation} has roles {list(rdef.roles)}"
                    )

    def _collect_class_symbols(self) -> frozenset[str]:
        symbols: set[str] = set(self._classes)
        for cdef in self._classes.values():
            symbols.update(cdef.mentioned_classes())
        for rdef in self._relations.values():
            symbols.update(rdef.mentioned_classes())
        return frozenset(symbols)

    def _check_alphabet_partition(self) -> None:
        overlap = self._class_symbols & set(self._relations)
        if overlap:
            raise SchemaError(f"symbols used both as class and relation: {sorted(overlap)}")
        overlap = self._class_symbols & self._attribute_symbols
        if overlap:
            raise SchemaError(f"symbols used both as class and attribute: {sorted(overlap)}")
        overlap = self._attribute_symbols & set(self._relations)
        if overlap:
            raise SchemaError(f"symbols used both as attribute and relation: {sorted(overlap)}")

    # ------------------------------------------------------------------
    # Alphabets
    # ------------------------------------------------------------------
    @property
    def class_symbols(self) -> frozenset[str]:
        """The alphabet ``C``: defined classes plus classes only mentioned."""
        return self._class_symbols

    @property
    def attribute_symbols(self) -> frozenset[str]:
        """The alphabet ``A``: attributes mentioned in any class definition."""
        return self._attribute_symbols

    @property
    def relation_symbols(self) -> frozenset[str]:
        """The alphabet ``R``: defined relations."""
        return frozenset(self._relations)

    @property
    def role_symbols(self) -> frozenset[str]:
        """The alphabet ``U``: roles declared by any relation."""
        return frozenset(role for rdef in self._relations.values() for role in rdef.roles)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def class_definitions(self) -> tuple[ClassDef, ...]:
        return tuple(self._classes.values())

    @property
    def relation_definitions(self) -> tuple[RelationDef, ...]:
        return tuple(self._relations.values())

    def definition(self, name: str) -> ClassDef:
        """The definition of class ``name`` (a trivial one if only mentioned)."""
        if name in self._classes:
            return self._classes[name]
        if name in self._class_symbols:
            return ClassDef(name)
        raise SchemaError(f"unknown class symbol {name!r}")

    def has_class(self, name: str) -> bool:
        return name in self._class_symbols

    def relation(self, name: str) -> RelationDef:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation symbol {name!r}") from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    def attribute_refs(self) -> frozenset[AttrRef]:
        """Every attribute reference (direct or inverse) used by some class."""
        return frozenset(
            spec.ref for cdef in self._classes.values() for spec in cdef.attributes
        )

    def is_union_free(self) -> bool:
        """Section 4.1: every class-clause and role-clause is a single literal."""
        for cdef in self._classes.values():
            if not cdef.isa.is_union_free():
                return False
            if any(not spec.filler.is_union_free() for spec in cdef.attributes):
                return False
        for rdef in self._relations.values():
            for clause in rdef.constraints:
                if len(clause) != 1:
                    return False
                if any(not lit.formula.is_union_free() for lit in clause):
                    return False
        return True

    def is_negation_free(self) -> bool:
        """Section 4.1: the symbol ``¬`` appears in no definition."""
        for cdef in self._classes.values():
            if not cdef.isa.is_negation_free():
                return False
            if any(not spec.filler.is_negation_free() for spec in cdef.attributes):
                return False
        for rdef in self._relations.values():
            for clause in rdef.constraints:
                if any(not lit.formula.is_negation_free() for lit in clause):
                    return False
        return True

    def max_arity(self) -> int:
        """Largest relation arity (0 when the schema has no relations)."""
        if not self._relations:
            return 0
        return max(rdef.arity for rdef in self._relations.values())

    def syntactic_size(self) -> int:
        """Total number of symbol occurrences across all definitions."""
        return (
            sum(cdef.syntactic_size() for cdef in self._classes.values())
            + sum(rdef.syntactic_size() for rdef in self._relations.values())
        )

    # ------------------------------------------------------------------
    # Functional updates (used by the reasoner to pose queries)
    # ------------------------------------------------------------------
    def with_class(self, cdef: ClassDef) -> "Schema":
        """A new schema with ``cdef`` added (or replacing a same-named one)."""
        classes = dict(self._classes)
        classes[cdef.name] = cdef
        return Schema(classes.values(), self._relations.values())

    def with_relation(self, rdef: RelationDef) -> "Schema":
        """A new schema with ``rdef`` added (or replacing a same-named one)."""
        relations = dict(self._relations)
        relations[rdef.name] = rdef
        return Schema(self._classes.values(), relations.values())

    def without_class(self, name: str) -> "Schema":
        """A new schema with the definition of ``name`` removed."""
        classes = {n: d for n, d in self._classes.items() if n != name}
        return Schema(classes.values(), self._relations.values())

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return (self._classes == other._classes
                and self._relations == other._relations)

    def __repr__(self) -> str:
        return (f"Schema({len(self._classes)} classes, "
                f"{len(self._relations)} relations, "
                f"{len(self._class_symbols)} class symbols)")
