"""Cooperative execution budgets: wall-clock deadlines and step bounds.

The paper's Section 4 constructions make the decision procedure EXPTIME-hard
in the worst case, so a service answering arbitrary schemas cannot promise
to finish — but it *can* promise to stop.  A :class:`Budget` is the
cooperative cancellation token that makes that promise enforceable: the hot
loops of the pipeline (DPLL branching in
:func:`repro.expansion.enumerate.dpll_compound_classes`,
compound-candidate enumeration in
:mod:`repro.expansion.expansion`, simplex pivoting in
:mod:`repro.linear.simplex`) call :meth:`Budget.tick` once per unit of
work, and the budget raises :class:`~repro.core.errors.BudgetExceeded` as
soon as either bound is crossed:

* ``deadline`` — wall-clock seconds from the budget's construction;
* ``max_steps`` — a deterministic step bound (useful in tests, where a
  tiny step budget proves a loop is actually guarded, independently of
  machine speed).

Design constraints mirror the tracer's (:mod:`repro.obs.tracer`):

1. **Near-zero cost when absent.**  Call sites obtain the ambient budget
   via :func:`current_budget`, which defaults to :data:`NULL_BUDGET` —
   a no-op whose ``tick`` does nothing.  Hot loops bind ``tick =
   budget.tick`` to a local once, so the unbudgeted path pays one no-op
   call per iteration (each iteration's real work dwarfs it).
2. **Ambient, not threaded.**  Budgets are per *query*, not per engine
   configuration — a frozen :class:`~repro.engine.config.EngineConfig`
   keys caches and must not carry one.  :func:`use_budget` installs a
   budget on the current context (a :class:`contextvars.ContextVar`, so
   thread- and task-safe); everything the ``with`` body executes is
   governed by it, without any signature changes.
3. **Catchable, isolating.**  :class:`~repro.core.errors.BudgetExceeded`
   is a :class:`~repro.core.errors.CarError` with its own sysexit code, so
   a batch driver can convert one runaway query into an error-carrying
   result and keep going.

>>> from repro.core.budget import Budget, use_budget
>>> with use_budget(Budget(max_steps=100)):
...     pass  # any reasoning in here stops after 100 hot-loop steps
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional, Union

from .errors import BudgetExceeded

__all__ = [
    "Budget",
    "NullBudget",
    "NULL_BUDGET",
    "current_budget",
    "use_budget",
]


class Budget:
    """A cooperative budget: wall-clock deadline and/or step bound.

    The clock starts at construction (:func:`time.monotonic`), so build the
    budget when the work starts, not ahead of time.  ``steps`` counts every
    unit of work ticked so far — the batch executor reports it as the
    ``executor.budget_checks`` counter.

    A budget is single-use state, not configuration: one budget governs one
    query (or one batch, if the caller wants a shared bound) and is not
    reusable after it trips.
    """

    __slots__ = ("deadline", "max_steps", "steps", "_expires_at")

    enabled = True

    def __init__(self, deadline: Optional[float] = None,
                 max_steps: Optional[int] = None):
        if deadline is not None and deadline <= 0:
            raise BudgetExceeded(
                f"deadline must be positive, got {deadline}; a query with "
                f"no time is over before it starts")
        if max_steps is not None and max_steps < 1:
            raise BudgetExceeded(
                f"max_steps must be positive, got {max_steps}")
        self.deadline = deadline
        self.max_steps = max_steps
        self.steps = 0
        self._expires_at = (None if deadline is None
                            else time.monotonic() + deadline)

    def tick(self, amount: int = 1) -> None:
        """Charge ``amount`` units of work; raise when a bound is crossed.

        Called from the hot loops, so the body is deliberately minimal: an
        integer add, a bound compare, and (when a deadline is set) one
        monotonic clock read — all cheap relative to a DPLL branch, a
        typing-consistency probe, or a simplex pivot.
        """
        self.steps += amount
        if self.max_steps is not None and self.steps > self.max_steps:
            raise BudgetExceeded(
                f"step budget exhausted: {self.steps} > {self.max_steps}",
                steps=self.steps, deadline=self.deadline)
        if (self._expires_at is not None
                and time.monotonic() > self._expires_at):
            raise BudgetExceeded(
                f"deadline of {self.deadline:g}s exceeded after "
                f"{self.steps} steps", steps=self.steps,
                deadline=self.deadline)

    def check(self) -> None:
        """An explicit checkpoint (no step charged): raise if expired."""
        if (self._expires_at is not None
                and time.monotonic() > self._expires_at):
            raise BudgetExceeded(
                f"deadline of {self.deadline:g}s exceeded after "
                f"{self.steps} steps", steps=self.steps,
                deadline=self.deadline)
        if self.max_steps is not None and self.steps > self.max_steps:
            raise BudgetExceeded(
                f"step budget exhausted: {self.steps} > {self.max_steps}",
                steps=self.steps, deadline=self.deadline)

    def remaining_seconds(self) -> Optional[float]:
        """Seconds until the deadline (None when no deadline is set)."""
        if self._expires_at is None:
            return None
        return max(0.0, self._expires_at - time.monotonic())

    def remaining_steps(self) -> Optional[int]:
        """Steps until the bound (None when no step bound is set)."""
        if self.max_steps is None:
            return None
        return max(0, self.max_steps - self.steps)

    def __repr__(self) -> str:
        return (f"Budget(deadline={self.deadline!r}, "
                f"max_steps={self.max_steps!r}, steps={self.steps})")


class NullBudget:
    """The absent budget: every method is a no-op that never raises.

    A single module-level instance (:data:`NULL_BUDGET`) is the ambient
    default, so unguarded callers pay one no-op method call per hot-loop
    iteration and nothing else.
    """

    __slots__ = ()

    enabled = False
    deadline = None
    max_steps = None
    steps = 0

    def tick(self, amount: int = 1) -> None:
        pass

    def check(self) -> None:
        pass

    def remaining_seconds(self) -> None:
        return None

    def remaining_steps(self) -> None:
        return None

    def __repr__(self) -> str:
        return "NULL_BUDGET"


NULL_BUDGET = NullBudget()

#: The ambient budget: a context-scoped cancellation token so the hot loops
#: can be governed without threading a parameter through every signature.
_CURRENT: ContextVar[Union[Budget, NullBudget]] = ContextVar(
    "repro_budget", default=NULL_BUDGET)


def current_budget() -> Union[Budget, NullBudget]:
    """The ambient budget (:data:`NULL_BUDGET` unless :func:`use_budget`
    is active on the current context)."""
    return _CURRENT.get()


@contextmanager
def use_budget(budget: Union[Budget, NullBudget, None]) -> Iterator[None]:
    """Install ``budget`` as the ambient budget for the ``with`` body.

    ``None`` installs :data:`NULL_BUDGET` (explicitly lifting any outer
    budget for the body — the executor uses this to keep its own
    bookkeeping outside a query's budget).
    """
    token = _CURRENT.set(budget if budget is not None else NULL_BUDGET)
    try:
        yield
    finally:
        _CURRENT.reset(token)
