"""Exception hierarchy for the CAR reproduction library.

Every error raised by the library derives from :class:`CarError`, so callers
can catch a single exception type at API boundaries.  The subclasses mirror
the pipeline stages: schema construction, parsing, semantics (model
checking), reasoning, and model synthesis.

Each class carries a stable, ``sysexits``-inspired :attr:`CarError.exit_code`
that the CLI maps process exits onto (and scripts may rely on):

=====================  ====  ==========================================
error                  code  meaning
=====================  ====  ==========================================
``ParseError``           65  malformed input (``EX_DATAERR``)
``SchemaError``          65  malformed input (``EX_DATAERR``)
``SemanticsError``       65  malformed input (``EX_DATAERR``)
``ReasoningError``       64  unanswerable question (``EX_USAGE``-like)
``BudgetExceeded``       75  deadline/step budget tripped (``EX_TEMPFAIL``)
``SynthesisError``       73  could not produce the output (``EX_CANTCREAT``)
``LinearSystemError``    70  internal inconsistency (``EX_SOFTWARE``)
``RegistryError``        65  malformed registry input (``EX_DATAERR``)
``RegistryNotFound``     67  unknown schema/version (``EX_NOUSER``)
``RegistryQuotaError``   69  tenant quota exhausted (``EX_UNAVAILABLE``)
``RegistrySizeError``    77  source size cap exceeded (``EX_NOPERM``)
``CarError`` (other)     70  internal inconsistency (``EX_SOFTWARE``)
=====================  ====  ==========================================

(The CLI additionally uses 0 for success, 1 for a negative verdict, 2 for
argparse usage errors, and 66 — ``EX_NOINPUT`` — for unreadable files.)
"""

from __future__ import annotations

from typing import Optional

__all__ = [
    "CarError",
    "SchemaError",
    "ParseError",
    "SemanticsError",
    "ReasoningError",
    "BudgetExceeded",
    "SynthesisError",
    "LinearSystemError",
    "RegistryError",
    "RegistryNotFound",
    "RegistryQuotaError",
    "RegistrySizeError",
]


class CarError(Exception):
    """Base class for every error raised by the ``repro`` library."""

    #: Stable process exit code for CLI error mapping (``EX_SOFTWARE``).
    exit_code = 70


class SchemaError(CarError):
    """An ill-formed schema component (duplicate symbols, bad cardinality,
    references to undeclared classes/relations/roles, ...)."""

    exit_code = 65


class ParseError(CarError):
    """A syntax error in the concrete CAR schema syntax.

    Carries the 1-based ``line`` and ``column`` of the offending token.
    """

    exit_code = 65

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SemanticsError(CarError):
    """An ill-formed interpretation (objects outside the universe, labeled
    tuples with wrong roles, ...)."""

    exit_code = 65


class ReasoningError(CarError):
    """The reasoner was asked something it cannot answer (e.g. satisfiability
    of a class symbol that does not occur in the schema)."""

    exit_code = 64


class BudgetExceeded(CarError):
    """A cooperative :class:`~repro.core.budget.Budget` bound was crossed.

    Raised from inside the pipeline's hot loops (DPLL branching, candidate
    enumeration, simplex pivoting) when the governing budget's wall-clock
    deadline or step bound trips.  Carries the ``steps`` performed and the
    ``deadline`` that governed the run (both possibly ``None``), so batch
    drivers can report *how far* a cancelled query got.

    The exit code is ``EX_TEMPFAIL``: the question was not unanswerable,
    the service just declined to keep paying for it — retry with a larger
    budget if the answer matters.
    """

    exit_code = 75

    def __init__(self, message: str, *, steps: Optional[int] = None,
                 deadline: Optional[float] = None):
        super().__init__(message)
        self.steps = steps
        self.deadline = deadline


class LinearSystemError(CarError):
    """An internal inconsistency while building or solving the system of
    linear disequations ``Psi_S``."""

    exit_code = 70


class SynthesisError(CarError):
    """Model synthesis failed (e.g. asked to build a model of an
    unsatisfiable class)."""

    exit_code = 73


class RegistryError(CarError):
    """Malformed registry input: a bad schema name, tenant id, or
    ``name@version`` reference (``EX_DATAERR``-family, like ParseError)."""

    exit_code = 65


class RegistryNotFound(RegistryError):
    """A registry lookup named a schema or version that does not exist.

    ``EX_NOUSER``: the addressed entity is missing — HTTP renders it 404.
    """

    exit_code = 67


class RegistryQuotaError(RegistryError):
    """A per-tenant *count* quota is exhausted (schemas per tenant, pinned
    versions blocking pruning, concurrent revalidations).

    ``EX_UNAVAILABLE``: the request is fine, the tenant must shed load or
    delete something first — HTTP renders it 429.
    """

    exit_code = 69


class RegistrySizeError(RegistryQuotaError):
    """A *size* quota is exceeded (one source too large, or the tenant's
    total stored bytes).  HTTP renders it 413 Payload Too Large."""

    exit_code = 77
