"""Exception hierarchy for the CAR reproduction library.

Every error raised by the library derives from :class:`CarError`, so callers
can catch a single exception type at API boundaries.  The subclasses mirror
the pipeline stages: schema construction, parsing, semantics (model
checking), reasoning, and model synthesis.
"""

from __future__ import annotations

__all__ = [
    "CarError",
    "SchemaError",
    "ParseError",
    "SemanticsError",
    "ReasoningError",
    "SynthesisError",
    "LinearSystemError",
]


class CarError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class SchemaError(CarError):
    """An ill-formed schema component (duplicate symbols, bad cardinality,
    references to undeclared classes/relations/roles, ...)."""


class ParseError(CarError):
    """A syntax error in the concrete CAR schema syntax.

    Carries the 1-based ``line`` and ``column`` of the offending token.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class SemanticsError(CarError):
    """An ill-formed interpretation (objects outside the universe, labeled
    tuples with wrong roles, ...)."""


class ReasoningError(CarError):
    """The reasoner was asked something it cannot answer (e.g. satisfiability
    of a class symbol that does not occur in the schema)."""


class LinearSystemError(CarError):
    """An internal inconsistency while building or solving the system of
    linear disequations ``Psi_S``."""


class SynthesisError(CarError):
    """Model synthesis failed (e.g. asked to build a model of an
    unsatisfiable class)."""
