"""The paper's running example: Figures 1 and 2 in concrete syntax.

:data:`FIGURE_1_SOURCE` is the plain object-oriented university schema of
Figure 1 (classes, isa, typed attributes — no CAR extensions), where the
enrolment of students in courses is still modeled by the class
``Enrollment``.

:data:`FIGURE_2_SOURCE` is the full CAR schema of Figure 2: disjointness
(``Student isa Person and not Professor``), unions
(``Professor or Grad_Student``), inverse attributes (``(inv taught_by)``),
the binary relation ``Enrollment`` with a disjunctive role-clause, the
ternary relation ``Exam``, and cardinality constraints throughout.
"""

from __future__ import annotations

from functools import lru_cache

from ..core.schema import Schema
from ..parser.parser import parse_schema

__all__ = ["FIGURE_1_SOURCE", "FIGURE_2_SOURCE", "figure1_schema", "figure2_schema"]

FIGURE_1_SOURCE = """
-- Figure 1: the basic object-oriented schema of the university example.
class Person
    attributes
        name : String;
        date_of_birth : String
endclass

class Professor
    isa Person
    attributes
        teaches : Course
endclass

class Student
    isa Person
    attributes
        student_id : String
endclass

class Grad_Student
    isa Student
endclass

class Course
    attributes
        taught_by : Professor
endclass

class Adv_Course
    isa Course
endclass

class Enrollment
    attributes
        enrolls : Student;
        enrolled_in : Course
endclass
"""

FIGURE_2_SOURCE = """
-- Figure 2: the full CAR schema of the university example.
class Person
    attributes
        name : (1, 1) String;
        date_of_birth : (1, 1) String
endclass

class Professor
    isa Person
    attributes
        (inv taught_by) : (1, 2) Course
endclass

class Student
    isa Person and not Professor
    attributes
        student_id : (1, 1) String
    participates in
        Enrollment[enrolls] : (1, 6)
endclass

class Grad_Student
    isa Student
    attributes
        (inv taught_by) : (0, 1) Course
    participates in
        Enrollment[enrolls] : (2, 3)
endclass

class Course
    attributes
        taught_by : (1, 1) Professor or Grad_Student
    participates in
        Enrollment[enrolled_in] : (5, 100)
endclass

class Adv_Course
    isa Course
    attributes
        taught_by : (1, 1) Professor
    participates in
        Enrollment[enrolled_in] : (5, 20)
endclass

relation Enrollment(enrolled_in, enrolls)
    constraints
        (enrolled_in : Course);
        (enrolls : Student);
        (enrolled_in : not Adv_Course) or (enrolls : Grad_Student)
endrelation

relation Exam(of, by, in)
    constraints
        (of : Student);
        (by : Professor);
        (in : Course)
endrelation
"""


@lru_cache(maxsize=None)
def figure1_schema() -> Schema:
    """The parsed schema of Figure 1."""
    return parse_schema(FIGURE_1_SOURCE)


@lru_cache(maxsize=None)
def figure2_schema() -> Schema:
    """The parsed schema of Figure 2."""
    return parse_schema(FIGURE_2_SOURCE)
