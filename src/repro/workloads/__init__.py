"""Workloads: the paper's example schemas and seeded random generators."""

from .catalog_schema import CATALOG_SOURCE, catalog_schema
from .generators import (
    adversarial_schema,
    cardinality_chain_schema,
    clustered_schema,
    hierarchy_schema,
    random_schema,
)
from .paper_schemas import (
    FIGURE_1_SOURCE,
    FIGURE_2_SOURCE,
    figure1_schema,
    figure2_schema,
)

__all__ = [
    "CATALOG_SOURCE", "catalog_schema",
    "adversarial_schema", "cardinality_chain_schema", "clustered_schema",
    "hierarchy_schema", "random_schema",
    "FIGURE_1_SOURCE", "FIGURE_2_SOURCE", "figure1_schema", "figure2_schema",
]
