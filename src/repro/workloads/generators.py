"""Seeded random schema generators — the benchmark workload families.

Every generator takes an integer ``seed`` and is fully deterministic, so
benchmark runs are reproducible.  The families mirror the regimes the
paper's complexity analysis distinguishes:

* :func:`clustered_schema` — many small independent clusters (category (β)
  of Section 4.3): strategic enumeration is polynomial, naive enumeration
  exponential in the total class count.
* :func:`hierarchy_schema` — generalization hierarchies (Section 4.4):
  compound classes = root-to-node paths, the provably polynomial case.
* :func:`adversarial_schema` — one densely connected, clause-rich cluster
  (category (α)): the expansion is genuinely exponential.
* :func:`cardinality_chain_schema` — a chain of classes with exact-count
  attributes forcing geometric population growth: exercises the linear
  phase (Theorem 4.3) with nontrivial ratios.
* :func:`random_schema` — unconstrained random mix for property tests.
* :func:`wide_attribute_schema` — one deep specialization chain sharing a
  single attribute: quadratically many compound attributes over linearly
  many compound classes, the worst case for the Ψ_S endpoint scans.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.cardinality import Card
from ..core.formulas import Clause, Formula, Lit, TOP
from ..core.schema import Attr, ClassDef, Schema, inv

__all__ = [
    "clustered_schema",
    "hierarchy_schema",
    "adversarial_schema",
    "cardinality_chain_schema",
    "random_schema",
    "wide_attribute_schema",
]


def clustered_schema(n_clusters: int, cluster_size: int, seed: int = 0) -> Schema:
    """Independent clusters of interrelated classes.

    Classes within a cluster reference each other through isa clauses; no
    definition mentions a class of another cluster, so ``G_S`` has exactly
    ``n_clusters`` components and Theorem 4.6 caps compound classes at
    ``n_clusters · 2^cluster_size`` instead of ``2^(n_clusters·cluster_size)``.
    """
    rng = random.Random(seed)
    classes: list[ClassDef] = []
    for c in range(n_clusters):
        names = [f"K{c}_{i}" for i in range(cluster_size)]
        for i, name in enumerate(names):
            if i == 0:
                classes.append(ClassDef(name))
                continue
            others = names[:i]
            clause_count = rng.randint(1, 2)
            clauses = []
            for _ in range(clause_count):
                width = rng.randint(1, min(2, len(others)))
                picked = rng.sample(others, width)
                clauses.append(Clause(tuple(
                    Lit(p, positive=rng.random() < 0.8) for p in picked)))
            classes.append(ClassDef(name, Formula(tuple(clauses))))
    return Schema(classes)


def hierarchy_schema(depth: int, branching: int, *,
                     with_attributes: bool = False, seed: int = 0) -> Schema:
    """A balanced generalization hierarchy with explicit sibling disjointness.

    ``depth`` levels below a single root, each internal class having
    ``branching`` children; every pair of distinct siblings is declared
    disjoint, matching the [BCN92] semantics Section 4.4 assumes.  With
    ``with_attributes`` each leaf gets a mandatory attribute into the root.
    """
    rng = random.Random(seed)
    classes: list[ClassDef] = [ClassDef("Root")]
    level = ["Root"]
    counter = 0
    for _ in range(depth):
        next_level = []
        for parent in level:
            children = []
            for _ in range(branching):
                counter += 1
                children.append(f"N{counter}")
            for child in children:
                isa: Formula = Formula((Clause((Lit(parent),)),))
                for sibling in children:
                    if sibling != child:
                        isa = isa & Clause((Lit(sibling, positive=False),))
                attrs = []
                if with_attributes and rng.random() < 0.5:
                    attrs.append(Attr(f"a{counter}_{child}",
                                      Card(1, rng.randint(1, 3)), "Root"))
                classes.append(ClassDef(child, isa, attrs))
            next_level.extend(children)
        level = next_level
    return Schema(classes)


def adversarial_schema(n_classes: int, seed: int = 0) -> Schema:
    """One densely connected cluster with union-rich isa parts.

    Built so that compound classes proliferate: every class's isa is a
    disjunction over earlier classes, keeping almost all subsets consistent
    while connecting everything into a single cluster (category (α) —
    Theorem 4.4's exponential regime).
    """
    rng = random.Random(seed)
    classes: list[ClassDef] = [ClassDef("X0")]
    for i in range(1, n_classes):
        earlier = [f"X{j}" for j in range(i)]
        width = min(len(earlier), rng.randint(2, 3))
        picked = rng.sample(earlier, width)
        clause = Clause(tuple(Lit(p) for p in picked))
        classes.append(ClassDef(f"X{i}", Formula((clause,))))
    return Schema(classes)


def cardinality_chain_schema(length: int, fan_out: int = 2,
                             seed: Optional[int] = None) -> Schema:
    """A chain ``L0 → L1 → … `` of pairwise-disjoint levels where every
    ``L_i`` object needs exactly ``fan_out`` links into ``L_{i+1}`` and every
    ``L_{i+1}`` object accepts exactly one link.

    Any model must satisfy ``|L_{i+1}| = fan_out · |L_i|``, so the linear
    phase juggles geometric ratios — a stress test for Theorem 4.3 and for
    model synthesis (models grow exponentially with ``length``).
    """
    classes: list[ClassDef] = []
    for i in range(length + 1):
        name = f"L{i}"
        isa: Formula = TOP
        for j in range(length + 1):
            if j != i:
                isa = isa & Clause((Lit(f"L{j}", positive=False),))
        attrs = []
        if i < length:
            attrs.append(Attr(f"next{i}", Card(fan_out, fan_out), f"L{i + 1}"))
        if i > 0:
            attrs.append(Attr(inv(f"next{i - 1}"), Card(1, 1), f"L{i - 1}"))
        classes.append(ClassDef(name, isa, attrs))
    return Schema(classes)


def wide_attribute_schema(n_specializations: int, *,
                          binding: bool = True) -> Schema:
    """A specialization chain ``Cn ⊑ … ⊑ C1 ⊑ C0`` sharing one attribute.

    The root declares ``link`` (and its inverse), so every one of the
    ``n+1`` compound classes — which all contain ``C0`` — is a legal
    endpoint on both sides: ``(n+1)²`` compound attributes over ``n+1``
    compound classes, all in a single cluster.  With ``binding=True`` the
    root's cardinalities are exact, so every compound class carries a
    binding ``Natt`` entry and the Ψ_S construction must resolve each
    against the full compound-attribute pool — quadratic with endpoint
    indexes, cubic with linear scans.  With ``binding=False`` both
    references are unconstrained ``(0, ∞)``: the binding-endpoint pruning
    enumerates no compound attributes at all, while the Definition 3.1
    verbatim expansion still materializes all ``(n+1)²``.
    """
    direct = Card(1, 1) if binding else Card(0, None)
    inverse = Card(0, n_specializations) if binding else Card(0, None)
    classes = [ClassDef("C0", attributes=[
        Attr("link", direct, Lit("C0")),
        Attr(inv("link"), inverse, Lit("C0")),
    ])]
    for i in range(1, n_specializations + 1):
        classes.append(
            ClassDef(f"C{i}", Formula((Clause((Lit(f"C{i - 1}"),)),))))
    return Schema(classes)


def random_schema(n_classes: int, seed: int = 0, *,
                  p_attribute: float = 0.4,
                  card_pool: tuple[Card, ...] = (
                      Card(0, 1), Card(1, 1), Card(1, 2), Card(0, None)),
                  ) -> Schema:
    """An unconstrained random schema for differential/property testing."""
    rng = random.Random(seed)
    names = [f"R{i}" for i in range(n_classes)]
    classes: list[ClassDef] = []
    attr_counter = 0
    for name in names:
        clauses = []
        for _ in range(rng.randint(0, 2)):
            width = rng.randint(1, 2)
            picked = rng.sample(names, min(width, len(names)))
            clauses.append(Clause(tuple(
                Lit(p, positive=rng.random() < 0.7) for p in picked)))
        attrs = []
        if rng.random() < p_attribute:
            attr_counter += 1
            filler = Lit(rng.choice(names), positive=rng.random() < 0.8)
            attrs.append(Attr(f"attr{attr_counter}", rng.choice(card_pool),
                              filler))
        classes.append(ClassDef(name, Formula(tuple(clauses)), attrs))
    return Schema(classes)
