"""A second full-scale domain workload: a product catalog & order system.

Complements the paper's university example with an e-commerce domain that
leans on every CAR construct at once — deep hierarchies with sibling
disjointness, unions as attribute types, inverse attributes with tight
cardinalities, a ternary relation, and a disjunctive role-clause.  Used by
the integration tests and available to users as a realistic template.
"""

from __future__ import annotations

from functools import lru_cache

from ..core.schema import Schema
from ..parser.parser import parse_schema

__all__ = ["CATALOG_SOURCE", "catalog_schema"]

CATALOG_SOURCE = """
-- Parties -----------------------------------------------------------
class Party endclass

class Customer
    isa Party and not Supplier
    participates in Order_Line[buyer] : (0, 8)
endclass

class Business_Customer
    isa Customer and not Retail_Customer
    attributes vat_id : (1, 1) Tax_Record
endclass

class Retail_Customer
    isa Customer and not Business_Customer
endclass

class Supplier
    isa Party
    attributes supplies : (1, 6) Product
endclass

-- Products ----------------------------------------------------------
class Product
    isa not Party
    attributes (inv supplies) : (1, 3) Supplier;
               price_tag : (1, 1) Price
    participates in Order_Line[item] : (0, 40)
endclass

class Physical_Product
    isa Product and not Digital_Product
    attributes shipped_in : (1, 1) Crate or Envelope
endclass

class Digital_Product
    isa Product and not Physical_Product
endclass

class Bulky_Product
    isa Physical_Product
    attributes shipped_in : (1, 1) Crate
endclass

-- Auxiliary value classes ------------------------------------------
class Price endclass
class Tax_Record endclass
class Crate isa not Envelope endclass
class Envelope isa not Crate endclass

-- The ternary order-line relation -----------------------------------
relation Order_Line(buyer, item, slot)
    constraints
        (buyer : Customer);
        (item : Product);
        (slot : Shipment_Slot);
        (item : not Digital_Product) or (slot : Instant_Slot)
        -- digital goods must go into instant-delivery slots
endrelation

class Shipment_Slot
    isa not Party and not Product
    participates in Order_Line[slot] : (0, 10)
endclass

class Instant_Slot
    isa Shipment_Slot
endclass
"""


@lru_cache(maxsize=None)
def catalog_schema() -> Schema:
    """The parsed catalog schema."""
    return parse_schema(CATALOG_SOURCE)
