"""Seeded conjunctive-query workloads for the rewriting benchmarks.

Everything here is deterministic in its integer ``seed``, like the
schema generators in :mod:`repro.workloads.generators`.  The family
targets the rewriting cost drivers specifically:

* :func:`taxonomy_schema` — a subclass tree of configurable branching
  and depth whose leaves participate mandatorily in per-level relations:
  class atoms specialize along the tree (``branching^depth`` leaves per
  root atom) and relation atoms eliminate into the mandatory
  participants;
* :func:`star_queries` — one center variable carrying a class atom plus
  ``arms`` relation atoms (the classic SPARQL-ish star shape);
* :func:`chain_queries` — relation atoms composed head-to-tail
  (``r(x0, x1), r(x1, x2), …``), the shape unification/reduction acts
  on;
* :func:`boolean_queries` — empty-head versions of both shapes;
* :func:`sample_database` — a seeded database *document* (the JSON
  shape of :func:`repro.qa.data.database_from_document`) populating the
  taxonomy, for end-to-end certain-answer evaluation.

``query_workload`` bundles the three shapes into one labeled suite for
``benchmarks/bench_query.py`` and the ``run_experiments`` section.
"""

from __future__ import annotations

import random

from ..core.cardinality import Card
from ..core.formulas import Clause, Formula, Lit
from ..core.schema import (
    ClassDef,
    ParticipationSpec,
    RelationDef,
    RoleClause,
    RoleLiteral,
    Schema,
)

__all__ = [
    "taxonomy_schema",
    "star_queries",
    "chain_queries",
    "boolean_queries",
    "query_workload",
    "sample_database",
]


def taxonomy_schema(branching: int, depth: int) -> Schema:
    """A subclass tree with one mandatory relation per level.

    Level 0 is the single root ``T``; level ``i`` holds ``branching**i``
    classes, each isa its parent.  Every non-root level ``i`` comes with
    a binary relation ``link{i}(src, dst)`` whose ``src`` is constrained
    to level ``i-1``'s leftmost class and whose ``dst`` is constrained to
    the root — and the leftmost class of level ``i-1`` participates
    mandatorily at ``src``.  Rewriting a root class atom then fans out
    over the whole tree plus one relation probe per level.
    """
    classes: list[ClassDef] = []
    relations: list[RelationDef] = []
    level = ["T"]
    classes.append(ClassDef("T"))
    for i in range(1, depth + 1):
        parent_leftmost = level[0]
        relation = f"link{i}"
        relations.append(RelationDef(
            relation, ("src", "dst"),
            constraints=[RoleClause(RoleLiteral("src",
                                                Lit(parent_leftmost))),
                         RoleClause(RoleLiteral("dst", Lit("T")))]))
        next_level: list[str] = []
        for j, parent in enumerate(level):
            for k in range(branching):
                name = f"T{i}_{j * branching + k}"
                participates = []
                if j == 0 and k == 0:
                    # The leftmost child chain participates mandatorily,
                    # so relation atoms eliminate into class atoms.
                    participates.append(
                        ParticipationSpec(relation, "src", Card(1, None)))
                classes.append(ClassDef(
                    name, Formula((Clause((Lit(parent),)),)),
                    participates=participates))
                next_level.append(name)
        level = next_level
    return Schema(classes, relations)


def _relations_of(schema: Schema) -> list:
    return sorted(schema.relation_definitions, key=lambda r: r.name)


def star_queries(schema: Schema, count: int, arms: int,
                 seed: int = 0) -> list[str]:
    """``count`` star-shaped queries: a class atom on the center variable
    plus ``arms`` relation atoms radiating from it."""
    rng = random.Random(seed)
    relations = _relations_of(schema)
    names = sorted(schema.class_symbols)
    queries = []
    for _ in range(count):
        center = rng.choice(names)
        atoms = [f"{center}(x)"]
        for arm in range(arms):
            rdef = rng.choice(relations)
            atoms.append(f"{rdef.name}(x, y{arm})")
        queries.append(f"q(x) :- {', '.join(atoms)}")
    return queries


def chain_queries(schema: Schema, count: int, length: int,
                  seed: int = 0) -> list[str]:
    """``count`` chain-shaped queries of ``length`` relation atoms
    composed head-to-tail, anchored by a class atom on the first
    variable."""
    rng = random.Random(seed)
    relations = _relations_of(schema)
    names = sorted(schema.class_symbols)
    queries = []
    for _ in range(count):
        atoms = [f"{rng.choice(names)}(x0)"]
        for i in range(length):
            rdef = rng.choice(relations)
            atoms.append(f"{rdef.name}(x{i}, x{i + 1})")
        queries.append(f"q(x0) :- {', '.join(atoms)}")
    return queries


def boolean_queries(schema: Schema, count: int, seed: int = 0) -> list[str]:
    """``count`` boolean (empty-head) queries mixing both shapes."""
    rng = random.Random(seed)
    sources = (star_queries(schema, count, 2, seed=rng.randint(0, 2 ** 30))
               + chain_queries(schema, count, 2,
                               seed=rng.randint(0, 2 ** 30)))
    picked = rng.sample(sources, count)
    return [source.replace("q(x0)", "q()").replace("q(x)", "q()")
            for source in picked]


def query_workload(schema: Schema, *, per_shape: int = 5,
                   arms: int = 2, length: int = 3,
                   seed: int = 0) -> list[tuple[str, str]]:
    """A labeled suite of ``(shape, query source)`` pairs over all three
    shapes — the unit the query benchmarks iterate."""
    suite = []
    suite.extend(("star", q)
                 for q in star_queries(schema, per_shape, arms, seed=seed))
    suite.extend(("chain", q)
                 for q in chain_queries(schema, per_shape, length,
                                        seed=seed + 1))
    suite.extend(("boolean", q)
                 for q in boolean_queries(schema, per_shape, seed=seed + 2))
    return suite


def sample_database(schema: Schema, n_objects: int, seed: int = 0) -> dict:
    """A seeded database document over ``schema`` (JSON shape of
    :func:`repro.qa.data.database_from_document`).

    Objects are spread across the declared classes; relations get tuples
    whose role fillers are drawn uniformly.  The document asserts
    memberships only where drawn — open-world, like real inputs — so
    certain-answer evaluation has genuine inference to do.
    """
    rng = random.Random(seed)
    names = sorted(schema.class_symbols)
    objects = {}
    for index in range(n_objects):
        member_of = rng.sample(names, rng.randint(0, min(2, len(names))))
        objects[f"o{index}"] = sorted(member_of)
    pool = sorted(objects)
    relation_rows = []
    for rdef in _relations_of(schema):
        for _ in range(max(1, n_objects // 2)):
            assignment = {role: rng.choice(pool) for role in rdef.roles}
            relation_rows.append([rdef.name, assignment])
    return {"objects": objects, "relations": relation_rows}
