"""Schema sessions: cached, reusable reasoning pipelines across queries.

A CLI invocation builds a pipeline, answers one question, and throws the
work away.  A service answering many satisfiability/implication queries
over evolving schemas cannot afford that: Phase 1 (the expansion) and
Phase 2 (the support) dominate the cost, yet are pure functions of the
schema and the engine configuration.  :class:`SchemaSession` is the layer
that exploits this:

* schemas are **fingerprinted** by a canonical-form hash
  (:func:`schema_fingerprint`) — definition order, not meaning, is
  normalized away, so a re-parsed or re-serialized schema hits the cache;
* warm :class:`~repro.reasoner.satisfiability.Reasoner` pipelines are kept
  in a **bounded LRU** (``config.session_cache_limit``), so an evolving
  fleet of schemas cannot exhaust memory;
* batched entry points (:meth:`SchemaSession.check_many`,
  :meth:`SchemaSession.classify`) reuse **one** support computation — and,
  through the reasoner's incremental augmented-query seeding, repeated
  formula queries against the same schema reuse warm tables and untouched
  clusters instead of rebuilding;
* with ``config.artifact_dir`` set, LRU misses consult the
  fingerprint-keyed **disk artifact cache**
  (:class:`~repro.engine.artifact.ArtifactCache`) before building: a hit
  rehydrates the Phase-1/Phase-2 stage products from a pickled
  :class:`~repro.engine.artifact.CompiledSchema`, an order of magnitude
  cheaper than rebuilding them, and a fresh build persists its snapshot
  the moment ``Ψ_S`` completes — so the *next* process (CLI run, service
  boot, pool worker) starts warm.

The CLI and the benchmark driver both construct their reasoners through a
session, so every entry point exercises the same engine path.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Iterable, Optional, Union

from ..core.errors import CarError
from ..core.formulas import FormulaLike
from ..core.schema import Schema
from ..obs.tracer import NullTracer, Tracer, as_tracer
from ..parser.printer import render_schema
from .config import EngineConfig
from .stats import PipelineStats, SessionStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..reasoner.satisfiability import CoherenceReport, Reasoner
    from .delta import RevalidationReport
    from .executor import BatchQueryLike, QueryOutcome, _ShardPayload

__all__ = ["SchemaSession", "SessionStats", "SessionCacheInfo",
           "schema_fingerprint"]

#: Backward-compatible alias: the cache-counter snapshot became the typed
#: :class:`~repro.engine.stats.SessionStats` payload.
SessionCacheInfo = SessionStats

#: Entry points accept either a parsed schema or concrete-syntax source.
SchemaLike = Union[Schema, str]


def schema_fingerprint(schema: SchemaLike) -> str:
    """A canonical-form hash of a schema.

    The schema is re-ordered canonically (class and relation definitions
    sorted by name — reordering definitions never changes the semantics),
    rendered to concrete syntax, and hashed.  Two schemas with equal
    definitions therefore share a fingerprint regardless of definition
    order or the textual route they arrived by; structurally different
    schemas collide only with SHA-256 probability.
    """
    schema = _as_schema(schema)
    canonical = Schema(
        sorted(schema.class_definitions, key=lambda cdef: cdef.name),
        sorted(schema.relation_definitions, key=lambda rdef: rdef.name))
    return hashlib.sha256(
        render_schema(canonical).encode("utf-8")).hexdigest()


def _as_schema(schema: SchemaLike) -> Schema:
    if isinstance(schema, Schema):
        return schema
    from ..parser.parser import parse_schema

    return parse_schema(schema)


class SchemaSession:
    """A service-facing façade over the engine: warm pipelines per schema.

    One session holds one :class:`~repro.engine.config.EngineConfig` and a
    bounded LRU of reasoners keyed by schema fingerprint.  All entry points
    accept a :class:`~repro.core.schema.Schema` or concrete-syntax source
    text.

    >>> session = SchemaSession()
    >>> session.satisfiable("class A isa not A endclass", "A")
    False
    """

    def __init__(self, config: Optional[EngineConfig] = None):
        self.config = config if config is not None else EngineConfig()
        self._cache: "OrderedDict[str, Reasoner]" = OrderedDict()
        # Query rewriters by schema fingerprint: each holds the per-schema
        # rewrite cache, bounded like the reasoner LRU.
        self._rewriters: OrderedDict = OrderedDict()
        self._executor = None
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        # The LRU and its counters are shared by every thread of a
        # threaded server; get/move_to_end/popitem must not interleave
        # (a lookup racing an eviction would KeyError on move_to_end).
        self._lock = threading.RLock()
        # One bus for every reasoner this session builds: with
        # trace=True the session owns a fresh Tracer; with a Tracer
        # instance the bus is shared with whoever supplied it.
        self._tracer = as_tracer(self.config.trace)
        from .artifact import ArtifactCache

        self._artifact_cache = ArtifactCache.from_config(
            self.config, tracer=self._tracer)

    # ------------------------------------------------------------------
    # The pipeline cache
    # ------------------------------------------------------------------
    def reasoner(self, schema: SchemaLike) -> "Reasoner":
        """The warm reasoner for ``schema`` — cached by fingerprint.

        A hit returns the existing instance with whatever pipeline stages
        and memoized query verdicts it already accumulated; a miss builds a
        fresh (lazy, so cheap) reasoner and may evict the least recently
        used one.
        """
        from ..reasoner.satisfiability import Reasoner

        schema = _as_schema(schema)
        key = schema_fingerprint(schema)
        with self._lock:
            cached = self._cache.get(key)
            if cached is not None:
                self._hits += 1
                self._tracer.add("session.cache_hits")
                self._cache.move_to_end(key)
                return cached
            self._misses += 1
            self._tracer.add("session.cache_misses")
            reasoner = self._build_reasoner(schema, key)
            self._cache[key] = reasoner
            while len(self._cache) > self.config.session_cache_limit:
                self._cache.popitem(last=False)
                self._evictions += 1
                self._tracer.add("session.cache_evictions")
            self._tracer.gauge("session.cache_size", len(self._cache))
            return reasoner

    def _build_reasoner(self, schema: Schema, fingerprint: str) -> "Reasoner":
        """The LRU-miss construction path, artifact cache first.

        A disk hit rehydrates the pipeline from its
        :class:`~repro.engine.artifact.CompiledSchema` snapshot; a miss
        builds lazily and arms the persist hook, so the snapshot is saved
        the moment the ``system`` stage completes (never eagerly — an
        eager build here would escape per-query budget scopes).
        """
        from ..reasoner.satisfiability import Reasoner
        from .pipeline import Pipeline

        cache = self._artifact_cache
        if cache is not None:
            artifact = cache.load(fingerprint, self.config)
            if artifact is not None:
                pipeline = Pipeline.from_artifact(
                    artifact, self.config, tracer=self._tracer)
                return Reasoner.from_pipeline(pipeline)
        reasoner = Reasoner(schema, config=self.config, tracer=self._tracer)
        if cache is not None:
            reasoner.pipeline.on_system_built = (
                lambda pipeline: cache.store(pipeline.compile()))
        return reasoner

    @property
    def artifact_cache(self):
        """The disk :class:`~repro.engine.artifact.ArtifactCache`, or None
        when ``config.artifact_dir`` is unset."""
        return self._artifact_cache

    def peek_compiled(self, fingerprint: str):
        """A :class:`~repro.engine.artifact.CompiledSchema` snapshot of the
        warm reasoner for ``fingerprint``, or None.

        Returns a snapshot only when the cached pipeline has its
        ``system`` stage built already — then :meth:`Pipeline.compile
        <repro.engine.pipeline.Pipeline.compile>` is a cheap repack, and
        the :class:`~repro.engine.executor.BatchExecutor` can ship it to
        pool workers instead of raw schema text.  Never forces a build.
        """
        with self._lock:
            cached = self._cache.get(fingerprint)
        if cached is None:
            return None
        pipeline = cached.pipeline
        if "system" not in pipeline._artifacts:
            return None
        return pipeline.compile()

    def cache_info(self) -> SessionStats:
        """Hit/miss/eviction counters and current occupancy."""
        with self._lock:
            return SessionStats(self._hits, self._misses, self._evictions,
                                len(self._cache),
                                self.config.session_cache_limit)

    def last_trace(self) -> Optional[Union[Tracer, NullTracer]]:
        """The session's event/metric bus, or None when tracing is off.

        The tracer accumulates across every query the session answered;
        call ``.snapshot()`` for a JSON-able rendering, ``.clear()`` to
        reset between request batches, or ``.write_jsonl(path)`` to export
        the versioned trace."""
        return self._tracer if self._tracer.enabled else None

    def warm(self, schemas: Iterable[SchemaLike]) -> list[PipelineStats]:
        """Pre-build every pipeline stage for each schema, now.

        A service that knows its schema fleet ahead of time calls this
        before taking traffic, so no query pays first-build latency.
        Returns the per-schema :class:`~repro.engine.stats.PipelineStats`
        in input order (building a pipeline *is* measuring it).
        """
        return [self.reasoner(schema).stats() for schema in schemas]

    def update(self, old: Union[SchemaLike, str, None],
               new: SchemaLike) -> "tuple[Reasoner, RevalidationReport]":
        """Revalidate an edited schema, reusing the previous version's work.

        ``old`` names the previous version — a schema, its source text, or
        directly its fingerprint (a 64-char hex string that parses as
        neither is treated as a fingerprint only when it *is* one the
        session has seen); ``None`` means "no predecessor", a cold build.
        The previous :class:`~repro.engine.artifact.CompiledSchema` is
        recovered from the warm LRU (:meth:`peek_compiled`) or the disk
        artifact cache, a :class:`~repro.engine.delta.SchemaDelta` is
        computed, and :meth:`Pipeline.recompile_from
        <repro.engine.pipeline.Pipeline.recompile_from>` rebuilds only the
        dirty clusters.  The new reasoner lands in the LRU under the new
        fingerprint (its support solved eagerly — an update *is* a
        revalidation), its artifact is persisted verdicts and all, and the
        returned :class:`~repro.engine.delta.RevalidationReport` itemizes
        the reuse.
        """
        import time as _time

        from ..reasoner.satisfiability import Reasoner
        from .delta import RevalidationReport, SchemaDelta
        from .pipeline import Pipeline

        started = _time.perf_counter()
        new_schema = _as_schema(new)
        new_fp = schema_fingerprint(new_schema)
        prev = old_fp = None
        old_schema: Optional[Schema] = None
        if old is not None:
            if (isinstance(old, str) and len(old) == 64
                    and all(ch in "0123456789abcdef" for ch in old)):
                old_fp = old
            else:
                old_schema = _as_schema(old)
                old_fp = schema_fingerprint(old_schema)
            prev = self.peek_compiled(old_fp)
            if prev is None and self._artifact_cache is not None:
                prev = self._artifact_cache.load(old_fp, self.config)
            if prev is not None and old_schema is None:
                old_schema = prev.schema

        if prev is None or old_schema is None:
            # Cold path: nothing to diff against.  reasoner() handles the
            # LRU bookkeeping; forcing support makes the update a complete
            # revalidation rather than a lazy promise.
            reasoner = self.reasoner(new_schema)
            _ = reasoner.pipeline.support
            self._tracer.add("session.update_fresh")
            return reasoner, RevalidationReport(
                mode="fresh", fingerprint_old=old_fp, fingerprint_new=new_fp,
                duration_s=_time.perf_counter() - started)

        delta = SchemaDelta.between(old_schema, new_schema)
        pipeline = Pipeline.recompile_from(prev, delta, self.config,
                                           tracer=self._tracer)
        _ = pipeline.support
        reasoner = Reasoner.from_pipeline(pipeline)
        with self._lock:
            self._cache[new_fp] = reasoner
            self._cache.move_to_end(new_fp)
            while len(self._cache) > self.config.session_cache_limit:
                self._cache.popitem(last=False)
                self._evictions += 1
                self._tracer.add("session.cache_evictions")
            self._tracer.gauge("session.cache_size", len(self._cache))
        if self._artifact_cache is not None:
            self._artifact_cache.store(pipeline.compile())
        stats = pipeline.delta_stats
        mode = stats.get("mode", "delta")
        self._tracer.add(f"session.update_{mode}")
        return reasoner, RevalidationReport(
            mode=mode, fingerprint_old=old_fp, fingerprint_new=new_fp,
            clusters_total=stats.get("clusters_total", 0),
            clusters_reused=stats.get("clusters_reused", 0),
            clusters_rebuilt=stats.get("clusters_rebuilt", 0),
            compounds_reused=stats.get("compounds_reused", 0),
            compounds_fresh=stats.get("compounds_fresh", 0),
            support_blocks_reused=stats.get("support_blocks_reused", 0),
            support_blocks_solved=stats.get("support_blocks_solved", 0),
            duration_s=_time.perf_counter() - started,
            delta=delta.summary())

    def invalidate(
            self,
            schema: Union[SchemaLike, Iterable[SchemaLike], None] = None,
            *, drop_artifacts: bool = False,
    ) -> None:
        """Drop warm pipelines: one schema's, an iterable's worth, or all.

        A single :class:`~repro.core.schema.Schema` or source-text string
        names one schema (strings are *not* treated as iterables of
        characters); any other iterable invalidates each member.

        Eviction is complete, not just an LRU pop: popped reasoners have
        their persist hooks disarmed, so a half-built pipeline invalidated
        mid-flight cannot resurrect its snapshot into the disk cache when
        its ``system`` stage later completes, and :meth:`peek_compiled`
        snapshots vanish with the entry they were read from.  With
        ``drop_artifacts=True`` the on-disk artifacts (every
        config-fingerprint variant) are unlinked too, so the next build is
        genuinely cold.
        """
        with self._lock:
            if schema is None:
                popped = list(self._cache.values())
                fingerprints = list(self._cache.keys())
                self._cache.clear()
            else:
                members = ([schema] if isinstance(schema, (Schema, str))
                           else list(schema))
                fingerprints = [schema_fingerprint(m) for m in members]
                popped = [entry for entry in
                          (self._cache.pop(fp, None) for fp in fingerprints)
                          if entry is not None]
            for reasoner in popped:
                reasoner.pipeline.on_system_built = None
            if schema is None:
                self._rewriters.clear()
            else:
                for fingerprint in fingerprints:
                    self._rewriters.pop(fingerprint, None)
            self._tracer.gauge("session.cache_size", len(self._cache))
        if drop_artifacts and self._artifact_cache is not None:
            if schema is None:
                self._artifact_cache.clear()
            else:
                for fingerprint in fingerprints:
                    self._artifact_cache.discard_fingerprint(fingerprint)

    def __contains__(self, schema: SchemaLike) -> bool:
        return schema_fingerprint(schema) in self._cache

    def __len__(self) -> int:
        return len(self._cache)

    def __enter__(self) -> "SchemaSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Batched query entry points
    # ------------------------------------------------------------------
    def satisfiable(self, schema: SchemaLike, class_name: str) -> bool:
        """Class satisfiability through the warm pipeline."""
        return self.reasoner(schema).is_satisfiable(class_name)

    def check_many(self, schema: SchemaLike,
                   formulas: Iterable[FormulaLike]) -> list[bool]:
        """Formula satisfiability for a batch, reusing one support
        computation (and the reasoner's augmented-query seeding and verdict
        memoization for the cross-cluster cases).

        A thin shim over :meth:`check_many_detailed`: each outcome's
        verdict is taken via :meth:`QueryOutcome.require()
        <repro.engine.executor.QueryOutcome.require>`, so a failed query
        raises its carried error the moment its slot is realized."""
        return [outcome.require()
                for outcome in self.check_many_detailed(
                    schema, formulas, collect_stats=False)]

    def check_many_detailed(
            self, schema: SchemaLike, formulas: Iterable[FormulaLike], *,
            deadline: Optional[float] = None,
            max_steps: Optional[int] = None,
            collect_stats: bool = True) -> "list[QueryOutcome]":
        """Formula satisfiability for a batch, with typed outcomes.

        Like :meth:`check_many` but failure-isolated and budgeted: each
        query runs under a fresh :class:`~repro.core.budget.Budget` of
        ``deadline`` seconds / ``max_steps`` hot-loop ticks (when given),
        and each yields a :class:`~repro.engine.executor.QueryOutcome` —
        verdict, error, duration, step count, pipeline-stats snapshot —
        instead of an exception tearing the batch down.
        """
        from ..core.formulas import as_formula
        from .executor import QueryError, QueryOutcome, _answer_with_reasoner

        coerced: list[tuple[int, object]] = []
        outcomes: dict[int, QueryOutcome] = {}
        for index, formula in enumerate(formulas):
            try:
                coerced.append((index, as_formula(formula)))
            except CarError as exc:
                outcomes[index] = QueryOutcome(
                    index, None, QueryError.from_exception(exc))
        total = len(coerced) + len(outcomes)
        if coerced:
            try:
                schema_obj = _as_schema(schema)
                fingerprint = schema_fingerprint(schema_obj)
                reasoner = self.reasoner(schema_obj)
            except CarError as exc:
                error = QueryError.from_exception(exc)
                for index, _ in coerced:
                    outcomes[index] = QueryOutcome(index, None, error)
            else:
                for index, formula in coerced:
                    outcomes[index] = _answer_with_reasoner(
                        reasoner, index, formula, deadline, max_steps,
                        collect_stats, fingerprint)
        return [outcomes[index] for index in range(total)]

    def run_batch(self, queries: "Iterable[BatchQueryLike]", *,
                  jobs: Optional[int] = 1, mode: str = "auto",
                  deadline: Optional[float] = None,
                  max_steps: Optional[int] = None,
                  collect_stats: bool = True) -> "list[QueryOutcome]":
        """Answer a heterogeneous batch of ``(schema, formula)`` queries.

        The session keeps one warm
        :class:`~repro.engine.executor.BatchExecutor` (recreated only when
        ``jobs``/``mode`` change), so repeated batches reuse the worker
        pool.  Serial shards run through this session's pipeline cache;
        parallel shards go to workers that warm their own.  See
        :meth:`BatchExecutor.run <repro.engine.executor.BatchExecutor.run>`
        for budget and failure-isolation semantics.
        """
        from .executor import BatchExecutor

        if jobs is None:
            import os

            jobs = os.cpu_count() or 1
        with self._lock:
            executor = self._executor
            if (executor is None or executor.jobs != jobs
                    or executor.mode != mode):
                if executor is not None:
                    executor.close()
                executor = BatchExecutor(self.config, jobs=jobs, mode=mode,
                                         tracer=self._tracer)
                self._executor = executor
        return executor.run(queries, deadline=deadline,
                            max_steps=max_steps,
                            collect_stats=collect_stats, session=self)

    def close(self) -> None:
        """Release the batch executor's worker pool (idempotent).

        Sessions are context managers — ``with SchemaSession() as s:``
        closes on exit, so a forgotten ``close()`` cannot leak the pool.
        """
        with self._lock:
            if self._executor is not None:
                self._executor.close()
                self._executor = None

    def _answer_shard(self, payload: "_ShardPayload") -> "list[QueryOutcome]":
        """In-process shard execution against this session's warm cache
        (the serial path of :class:`~repro.engine.executor.BatchExecutor`)."""
        from .executor import QueryError, QueryOutcome, _answer_with_reasoner

        try:
            reasoner = self.reasoner(payload.schema_source)
        except CarError as exc:
            error = QueryError.from_exception(exc)
            return [QueryOutcome(index, None, error,
                                 schema_fingerprint=payload.fingerprint)
                    for index, _ in payload.queries]
        return [_answer_with_reasoner(reasoner, index, formula,
                                      payload.deadline, payload.max_steps,
                                      payload.collect_stats,
                                      payload.fingerprint)
                for index, formula in payload.queries]

    # ------------------------------------------------------------------
    # Conjunctive-query answering
    # ------------------------------------------------------------------
    def query(self, schema: SchemaLike, query, database=None):
        """Certain answers of a conjunctive query over ``schema``.

        ``query`` is concrete syntax (``q(x) :- Person(x), works_for(x,
        y)``) or a parsed :class:`~repro.qa.ast.ConjunctiveQuery`;
        ``database`` is a :class:`~repro.semantics.database.Database`, the
        JSON document shape of :func:`~repro.qa.data.database_from_document`,
        or None (schema-only entailment).  The schema's
        :class:`~repro.qa.rewriter.QueryRewriter` — and with it the
        rewrite cache — is kept warm per fingerprint, parallel to the
        reasoner LRU.  Returns a :class:`~repro.qa.evaluator.QueryAnswer`.
        """
        from ..qa import certain_answers, database_from_document, parse_query
        from ..semantics.database import Database

        schema_obj = _as_schema(schema)
        fingerprint = schema_fingerprint(schema_obj)
        reasoner = self.reasoner(schema_obj)
        rewriter = self._rewriter_for(fingerprint, reasoner)
        if isinstance(query, str):
            query = parse_query(query, reasoner.schema)
        else:
            query.validate(reasoner.schema)
        if database is not None and not isinstance(database, Database):
            database = database_from_document(reasoner.schema, database)
        return certain_answers(rewriter, query, database,
                               reasoner=reasoner, tracer=self._tracer)

    def _rewriter_for(self, fingerprint: str, reasoner: "Reasoner"):
        """The warm :class:`~repro.qa.rewriter.QueryRewriter` for one
        schema, building (and persisting) its closure index on first use."""
        with self._lock:
            rewriter = self._rewriters.get(fingerprint)
            if rewriter is not None:
                self._rewriters.move_to_end(fingerprint)
                return rewriter
        # Closure construction happens outside the lock (it forces the
        # support stage); a racing thread at worst builds it twice.
        closure = reasoner.pipeline.closure_index()
        if (self._artifact_cache is not None
                and "system" in reasoner.pipeline._artifacts):
            # Re-store so the next process rehydrates the closure too.
            self._artifact_cache.store(reasoner.pipeline.compile())
        from ..qa import QueryRewriter

        with self._lock:
            rewriter = self._rewriters.get(fingerprint)
            if rewriter is None:
                rewriter = QueryRewriter(closure, tracer=self._tracer)
                self._rewriters[fingerprint] = rewriter
                while len(self._rewriters) > self.config.session_cache_limit:
                    self._rewriters.popitem(last=False)
            return rewriter

    def check_coherence(self, schema: SchemaLike) -> "CoherenceReport":
        """Whole-schema validation through the warm pipeline."""
        return self.reasoner(schema).check_coherence()

    def classify(self, schema: SchemaLike):
        """The implied subsumption hierarchy, reusing the warm pipeline."""
        from ..reasoner.implication import classify as _classify

        return _classify(self.reasoner(schema))

    def stats(self, schema: SchemaLike) -> PipelineStats:
        """Pipeline measurements for ``schema`` (builds missing stages)."""
        return self.reasoner(schema).stats()
