"""Typed, versioned stats payloads for the engine layer.

``Pipeline.stats()`` / ``Reasoner.stats()`` and the session cache counters
used to hand out untyped dictionaries, so every consumer — CLI, benchmark
tables, tests — string-typed its way into them.  These frozen dataclasses
replace the dicts:

* :class:`PipelineStats` — the size/time measurements of one pipeline;
* :class:`SessionStats`  — one session's pipeline-cache counters.

Both carry ``schema_version`` (:data:`STATS_SCHEMA_VERSION`) and render to
plain JSON-able dicts via ``to_json()``.  For the transition they keep a
``stats["key"]``-style ``__getitem__``/``__contains__`` shim that emits a
:class:`DeprecationWarning` pointing at the attribute (and at ``to_json()``
for whole-dict consumers); the shim understands the historical flat keys,
including the ``time_<stage>`` timing entries.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, field, fields

__all__ = ["STATS_SCHEMA_VERSION", "PipelineStats", "SessionStats"]

#: Version of the stats payload shapes.  Bump on any field change; the
#: value travels in every ``to_json()`` document as ``"stats_schema"``.
STATS_SCHEMA_VERSION = 1

_TIME_PREFIX = "time_"


class _DictCompatMixin:
    """The deprecated dict-style access shim shared by both stats types."""

    def _compat_lookup(self, key: str):
        if key.startswith(_TIME_PREFIX):
            timings = getattr(self, "timings", {})
            if key[len(_TIME_PREFIX):] in timings:
                return timings[key[len(_TIME_PREFIX):]]
            raise KeyError(key)
        if key == "schema_version":
            raise KeyError(key)  # never a flat dict key historically
        try:
            return getattr(self, key)
        except AttributeError:
            raise KeyError(key) from None

    def __getitem__(self, key: str):
        warnings.warn(
            f"dict-style access {type(self).__name__}[{key!r}] is "
            f"deprecated; read the attribute directly or call .to_json()",
            DeprecationWarning, stacklevel=2)
        return self._compat_lookup(key)

    def __contains__(self, key) -> bool:
        warnings.warn(
            f"dict-style membership tests on {type(self).__name__} are "
            f"deprecated; read the attribute directly or call .to_json()",
            DeprecationWarning, stacklevel=2)
        try:
            self._compat_lookup(key)
        except (KeyError, TypeError):
            return False
        return True

    def to_json_text(self) -> str:
        """The ``to_json()`` document serialized with stable key order."""
        return json.dumps(self.to_json(), indent=2, sort_keys=True)


@dataclass(frozen=True)
class PipelineStats(_DictCompatMixin):
    """Size and wall-clock measurements of one reasoning pipeline.

    The size fields mirror the paper's complexity parameters (schema size,
    expansion size, |Ψ_S|); ``timings`` maps stage names to accumulated
    wall-clock seconds (``tables``, ``expansion``, ``system``, ``support``,
    plus ``augmented_seed`` / ``augmented_query`` once augmented queries
    ran); ``lp_backend`` names the arithmetic core that produced the final
    support witness.
    """

    classes: int
    schema_size: int
    compound_classes: int
    expansion_size: int
    psi_unknowns: int
    psi_constraints: int
    psi_size: int
    lp_rounds: int
    supported: int
    lp_backend: str = "unknown"
    timings: dict[str, float] = field(default_factory=dict)
    schema_version: int = STATS_SCHEMA_VERSION

    def to_json(self) -> dict:
        """A flat, JSON-able dict: the historical keys plus the version."""
        payload = {"stats_schema": self.schema_version}
        for spec in fields(self):
            if spec.name in ("timings", "schema_version"):
                continue
            payload[spec.name] = getattr(self, spec.name)
        for stage, seconds in sorted(self.timings.items()):
            payload[f"{_TIME_PREFIX}{stage}"] = seconds
        return payload


@dataclass(frozen=True)
class SessionStats(_DictCompatMixin):
    """A snapshot of one session's pipeline-cache counters."""

    hits: int
    misses: int
    evictions: int
    size: int
    limit: int
    schema_version: int = STATS_SCHEMA_VERSION

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_json(self) -> dict:
        return {
            "stats_schema": self.schema_version,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "size": self.size,
            "limit": self.limit,
            "hit_rate": self.hit_rate,
        }
