"""The engine layer: pipeline configuration, staged artifacts, sessions.

``core``/``expansion``/``linear`` implement the paper's mathematics; the
engine layer turns them into a configurable, reusable machine:

* :class:`~repro.engine.config.EngineConfig` — every pipeline knob in one
  frozen value;
* :class:`~repro.engine.pipeline.Pipeline` — the staged decision procedure
  (tables → expansion → Ψ_S → support) with uniform lazy construction and
  per-stage timing;
* :class:`~repro.engine.session.SchemaSession` — fingerprint-keyed caching
  of warm pipelines plus batched query entry points.

:class:`~repro.reasoner.satisfiability.Reasoner` is a thin query façade
over a pipeline; the CLI and benchmarks go through sessions.
"""

from .config import EngineConfig
from .pipeline import Pipeline, PipelineStage
from .session import SchemaSession, SessionCacheInfo, schema_fingerprint

__all__ = [
    "EngineConfig",
    "Pipeline",
    "PipelineStage",
    "SchemaSession",
    "SessionCacheInfo",
    "schema_fingerprint",
]
