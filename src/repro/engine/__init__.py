"""The engine layer: pipeline configuration, staged artifacts, sessions.

``core``/``expansion``/``linear`` implement the paper's mathematics; the
engine layer turns them into a configurable, reusable machine:

* :class:`~repro.engine.config.EngineConfig` — every pipeline knob in one
  frozen value;
* :class:`~repro.engine.pipeline.Pipeline` — the staged decision procedure
  (tables → expansion → Ψ_S → support) with uniform lazy construction and
  per-stage timing;
* :class:`~repro.engine.session.SchemaSession` — fingerprint-keyed caching
  of warm pipelines plus batched query entry points;
* :class:`~repro.engine.executor.BatchExecutor` — parallel, budgeted batch
  answering across schema-fingerprint shards, yielding typed
  :class:`~repro.engine.executor.QueryOutcome` results;
* :class:`~repro.engine.artifact.CompiledSchema` /
  :class:`~repro.engine.artifact.ArtifactCache` — versioned, picklable
  snapshots of the Phase-1/Phase-2 stage products and their
  fingerprint-keyed disk cache, so pool workers and cold process starts
  rehydrate instead of rebuilding.

:class:`~repro.reasoner.satisfiability.Reasoner` is a thin query façade
over a pipeline; the CLI and benchmarks go through sessions.
"""

from .artifact import (ARTIFACT_SCHEMA_VERSION, ArtifactCache,
                       CompiledSchema, SupportSnapshot, config_fingerprint,
                       default_artifact_dir)
from .config import EngineConfig
from .delta import RevalidationReport, SchemaDelta
from .executor import BatchExecutor, BatchQuery, QueryError, QueryOutcome
from .pipeline import Pipeline, PipelineStage
from .session import SchemaSession, SessionCacheInfo, schema_fingerprint

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "ArtifactCache",
    "BatchExecutor",
    "BatchQuery",
    "CompiledSchema",
    "EngineConfig",
    "Pipeline",
    "PipelineStage",
    "QueryError",
    "QueryOutcome",
    "RevalidationReport",
    "SchemaDelta",
    "SchemaSession",
    "SessionCacheInfo",
    "SupportSnapshot",
    "config_fingerprint",
    "default_artifact_dir",
    "schema_fingerprint",
]
