"""The engine layer: pipeline configuration, staged artifacts, sessions.

``core``/``expansion``/``linear`` implement the paper's mathematics; the
engine layer turns them into a configurable, reusable machine:

* :class:`~repro.engine.config.EngineConfig` — every pipeline knob in one
  frozen value;
* :class:`~repro.engine.pipeline.Pipeline` — the staged decision procedure
  (tables → expansion → Ψ_S → support) with uniform lazy construction and
  per-stage timing;
* :class:`~repro.engine.session.SchemaSession` — fingerprint-keyed caching
  of warm pipelines plus batched query entry points;
* :class:`~repro.engine.executor.BatchExecutor` — parallel, budgeted batch
  answering across schema-fingerprint shards, yielding typed
  :class:`~repro.engine.executor.QueryOutcome` results.

:class:`~repro.reasoner.satisfiability.Reasoner` is a thin query façade
over a pipeline; the CLI and benchmarks go through sessions.
"""

from .config import EngineConfig
from .executor import BatchExecutor, BatchQuery, QueryError, QueryOutcome
from .pipeline import Pipeline, PipelineStage
from .session import SchemaSession, SessionCacheInfo, schema_fingerprint

__all__ = [
    "BatchExecutor",
    "BatchQuery",
    "EngineConfig",
    "Pipeline",
    "PipelineStage",
    "QueryError",
    "QueryOutcome",
    "SchemaSession",
    "SessionCacheInfo",
    "schema_fingerprint",
]
