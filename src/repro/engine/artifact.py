"""Precompiled pipeline artifacts: snapshot, fingerprint, persist, reload.

The Phase-1/Phase-2 products of a :class:`~repro.engine.pipeline.Pipeline`
— the preselection tables, the expansion ``S̄`` (Definition 3.1), and the
disequation system ``Ψ_S`` (Theorem 3.3) — are pure functions of the schema
text and two :class:`~repro.engine.config.EngineConfig` knobs (``strategy``
and ``size_limit``).  Yet every process-pool worker and every cold CLI or
service start used to rebuild them from scratch, which is why the committed
parallel benchmarks showed process mode *losing* to serial.  This module is
the fix:

* :class:`CompiledSchema` — a frozen, picklable snapshot of those products
  plus the cluster/hierarchy metadata, versioned by
  :data:`ARTIFACT_SCHEMA_VERSION` and keyed by the schema fingerprint and
  :func:`config_fingerprint`;
* :class:`ArtifactCache` — a fingerprint-keyed disk cache of pickled
  snapshots (atomic writes, silent rebuild of corrupt or stale entries),
  the backing store behind :class:`~repro.engine.session.SchemaSession`
  misses and the worker cold path of
  :class:`~repro.engine.executor.BatchExecutor`.

Unpickling a snapshot is an order of magnitude cheaper than re-running
Phase 1, so a rehydrated pipeline skips straight to support solving.  The
support itself is deliberately *not* stored: it depends on the LP knobs
(``lp_backend``, ``use_propagation``, ``merge_columns``), so excluding it
lets every LP configuration share one artifact.

Cache failures never change verdicts: a missing, corrupt, truncated,
version-mismatched, or config-mismatched entry is counted
(``artifact.miss`` / ``artifact.stale``), discarded best-effort, and the
caller falls back to a fresh build.  Tracer counters: ``artifact.build``,
``artifact.save``, ``artifact.load``, ``artifact.hit``, ``artifact.miss``,
``artifact.stale``.
"""

from __future__ import annotations

import gc
import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from fractions import Fraction
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Union

from ..obs.tracer import NULL_TRACER, NullTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.schema import Schema
    from ..expansion.expansion import Expansion
    from ..expansion.tables import SchemaTables
    from ..linear.support import SupportResult
    from ..linear.system import PsiSystem
    from ..qa.closure import ClosureIndex
    from .config import EngineConfig

__all__ = [
    "ARTIFACT_SCHEMA_VERSION",
    "CompiledSchema",
    "SupportSnapshot",
    "ArtifactCache",
    "config_fingerprint",
    "default_artifact_dir",
]

#: Version of the :class:`CompiledSchema` payload.  Bump on any change to
#: the snapshot fields *or* to the pickled shape of the stage products —
#: a loader finding a different version treats the entry as stale and
#: rebuilds from source.  v2 added the optional :class:`SupportSnapshot`
#: (support verdicts keyed by unknown, consumed by delta revalidation);
#: v3 added the optional query-rewriting
#: :class:`~repro.qa.closure.ClosureIndex`.
ARTIFACT_SCHEMA_VERSION = 3

#: Environment variable overriding the default artifact directory
#: (useful for tests and hermetic CI runs).
ARTIFACT_DIR_ENV = "REPRO_ARTIFACT_DIR"


def default_artifact_dir() -> str:
    """The default on-disk artifact directory.

    Resolution order: ``$REPRO_ARTIFACT_DIR``, then
    ``$XDG_CACHE_HOME/repro``, then ``~/.cache/repro``.
    """
    env = os.environ.get(ARTIFACT_DIR_ENV)
    if env:
        return env
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return str(base / "repro")


def config_fingerprint(config: "EngineConfig") -> str:
    """A short hash of the config knobs a snapshot depends on.

    Only ``strategy`` and ``size_limit`` shape the stored stage products
    (they steer the compound-class enumeration); the LP knobs, the cache
    bounds, and the tracing switch do not, so configs differing only in
    those share artifacts — e.g. the exact and float-fallback backends
    rehydrate from the same file.
    """
    material = (f"v{ARTIFACT_SCHEMA_VERSION}"
                f"|strategy={config.strategy}"
                f"|size_limit={config.size_limit}")
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class SupportSnapshot:
    """Backend-agnostic support verdicts, keyed by *unknown object*.

    A :class:`~repro.linear.support.SupportResult` speaks in unknown
    indices of one concrete :class:`~repro.linear.system.PsiSystem`; the
    snapshot re-keys everything by the compound objects themselves, so the
    verdicts survive being carried into a *different* system whose indices
    diverged (the delta-revalidation path grafts untouched Ψ_S blocks from
    a previous schema version's system into the new one).

    The maximal acceptable support is unique and backend-independent (the
    differential suite pins exact and float-fallback to identical support
    sets), so storing it does not fragment the artifact cache per backend
    the way storing raw LP state would.
    """

    backend_used: str
    rounds: int
    #: Unknown objects inside the maximal acceptable support.
    supported: frozenset
    #: Witness values per unknown object (the full acceptable solution).
    values: tuple[tuple[object, Fraction], ...]
    #: Pin log re-keyed by unknown: ``(unknown, phase, reason, round)``.
    pins: tuple[tuple[object, str, str, int], ...]

    @classmethod
    def from_result(cls, result: "SupportResult") -> "SupportSnapshot":
        """Re-key a support result by unknown object."""
        unknowns = result.system.unknowns
        return cls(
            backend_used=result.backend_used,
            rounds=result.rounds,
            supported=frozenset(unknowns[i] for i in result.support),
            values=tuple((unknowns[i], value)
                         for i, value in sorted(result.solution.items())),
            pins=tuple((unknowns[e.index], e.phase, e.reason, e.round)
                       for e in result.pin_log),
        )

    def to_result(self, system: "PsiSystem") -> "SupportResult":
        """Rebuild a :class:`SupportResult` against ``system``.

        Only valid when ``system`` has exactly the unknowns this snapshot
        covers (the unchanged-schema rehydration path); partial grafts go
        through :func:`repro.engine.delta.merge_support` instead.
        """
        from ..linear.support import PinEvent, SupportResult

        return SupportResult(
            system=system,
            support=frozenset(system.index_of(u) for u in self.supported),
            solution={system.index_of(u): value for u, value in self.values},
            rounds=self.rounds,
            backend_used=self.backend_used,
            pin_log=tuple(PinEvent(system.index_of(u), phase, reason, rnd)
                          for u, phase, reason, rnd in self.pins),
        )


@dataclass(frozen=True)
class CompiledSchema:
    """A frozen, picklable snapshot of one schema's compiled pipeline.

    Produced by :meth:`Pipeline.compile
    <repro.engine.pipeline.Pipeline.compile>`; consumed by
    :meth:`Pipeline.from_artifact
    <repro.engine.pipeline.Pipeline.from_artifact>`, which pre-populates a
    fresh pipeline with the stored stage products so only the support
    computation remains.  ``fingerprint`` is the canonical schema hash
    (:func:`~repro.engine.session.schema_fingerprint`);
    ``config_fingerprint`` pins the enumeration-shaping knobs the snapshot
    was built under; ``config`` travels along (tracing stripped) so a
    snapshot is self-describing.
    """

    schema_version: int
    fingerprint: str
    config_fingerprint: str
    config: "EngineConfig"
    schema: "Schema"
    tables: "SchemaTables"
    expansion: "Expansion"
    system: "PsiSystem"
    clusters: Optional[tuple[frozenset, ...]]
    hierarchy_effective: Optional[bool]
    #: Support verdicts, present only when the support stage had been
    #: solved by compile() time.  Optional so snapshots stay shareable
    #: across LP backends (the support itself is backend-independent) and
    #: so the cheap on-system-built persist hook need not force Phase 2.
    support: Optional[SupportSnapshot] = None
    #: The query-rewriting implication closure, present only when it had
    #: been built by compile() time (the ``/v1/query`` path forces it; a
    #: satisfiability-only run never pays for it).  Optional with a None
    #: default so v2-shaped pickles of the same version would still load.
    closure: Optional["ClosureIndex"] = None

    def summary(self) -> dict:
        """A small JSON-able description (the ``repro compile`` line)."""
        return {
            "artifact_schema": self.schema_version,
            "fingerprint": self.fingerprint,
            "config_fingerprint": self.config_fingerprint,
            "classes": len(self.schema.class_symbols),
            "compound_classes": len(self.expansion.compound_classes),
            "psi_size": self.system.size(),
            "has_support": self.support is not None,
            "has_closure": self.closure is not None,
        }


class ArtifactCache:
    """A fingerprint-keyed disk cache of pickled :class:`CompiledSchema`.

    One file per ``(schema fingerprint, config fingerprint, artifact
    version)`` triple, so version bumps and config changes miss instead of
    colliding.  Writes are atomic (tempfile in the cache directory +
    ``os.replace``), so a concurrent reader sees either the old complete
    file or the new complete file, never a torn one.  Every disk failure —
    unwritable directory, corrupt pickle, racing unlink — degrades to a
    miss; the cache can slow a caller down, never give it a wrong verdict.
    """

    def __init__(self, directory: Union[str, os.PathLike], *,
                 tracer: Union[Tracer, NullTracer] = NULL_TRACER):
        self.directory = Path(os.fspath(directory)).expanduser()
        self._tracer = tracer

    @classmethod
    def from_config(cls, config: "EngineConfig", *,
                    tracer: Union[Tracer, NullTracer] = NULL_TRACER
                    ) -> Optional["ArtifactCache"]:
        """The cache named by ``config.artifact_dir``, or None when the
        config leaves disk caching off."""
        if config.artifact_dir is None:
            return None
        return cls(config.artifact_dir, tracer=tracer)

    def path_for(self, fingerprint: str, config_fp: str) -> Path:
        """The cache file for one (schema, config) fingerprint pair."""
        return self.directory / (
            f"{fingerprint}.{config_fp}.v{ARTIFACT_SCHEMA_VERSION}.pkl")

    # ------------------------------------------------------------------
    def load(self, fingerprint: str,
             config: "EngineConfig") -> Optional[CompiledSchema]:
        """The stored snapshot for ``(fingerprint, config)``, or None.

        A missing file counts ``artifact.miss``; an unreadable, corrupt,
        or mismatched one counts ``artifact.stale`` and is discarded
        best-effort; a valid one counts ``artifact.hit`` and
        ``artifact.load``.
        """
        tracer = self._tracer
        config_fp = config_fingerprint(config)
        path = self.path_for(fingerprint, config_fp)
        with tracer.span("artifact.load"):
            try:
                data = path.read_bytes()
            except FileNotFoundError:
                tracer.add("artifact.miss")
                return None
            except OSError:
                tracer.add("artifact.miss")
                return None
            try:
                artifact = _loads_without_gc(data)
            except Exception:
                # Truncated write from a crashed process, a foreign file,
                # an unpicklable payload from a future version — rebuild.
                tracer.add("artifact.stale")
                self._discard(path)
                return None
        if (not isinstance(artifact, CompiledSchema)
                or artifact.schema_version != ARTIFACT_SCHEMA_VERSION
                or artifact.fingerprint != fingerprint
                or artifact.config_fingerprint != config_fp):
            tracer.add("artifact.stale")
            self._discard(path)
            return None
        tracer.add("artifact.hit")
        tracer.add("artifact.load")
        return artifact

    def store(self, artifact: CompiledSchema) -> bool:
        """Persist ``artifact`` atomically; False (never an exception) when
        the disk refuses."""
        try:
            payload = pickle.dumps(artifact,
                                   protocol=pickle.HIGHEST_PROTOCOL)
            self.directory.mkdir(parents=True, exist_ok=True)
            path = self.path_for(artifact.fingerprint,
                                 artifact.config_fingerprint)
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.directory), prefix=path.name + ".", suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except (OSError, pickle.PicklingError, TypeError):
            return False
        self._tracer.add("artifact.save")
        return True

    def _discard(self, path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def discard_fingerprint(self, fingerprint: str) -> int:
        """Remove every stored entry for one schema fingerprint (any config
        fingerprint, any artifact version); returns the number unlinked.

        The explicit-invalidation companion of
        :meth:`SchemaSession.invalidate
        <repro.engine.session.SchemaSession.invalidate>`: without it a
        dropped warm pipeline would simply rehydrate from its stale pickle
        on the next miss.
        """
        return self._discard_matching(f"{fingerprint}.*.pkl")

    def clear(self) -> int:
        """Remove every stored artifact; returns the number unlinked."""
        return self._discard_matching("*.pkl")

    def _discard_matching(self, pattern: str) -> int:
        removed = 0
        try:
            paths = list(self.directory.glob(pattern))
        except OSError:
            return 0
        for path in paths:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        if removed:
            self._tracer.add("artifact.discard", removed)
        return removed


def _loads_without_gc(data: bytes):
    """``pickle.loads`` with the collector paused.

    Rehydrating a snapshot allocates one large object graph in a burst;
    generational GC passes triggered mid-burst cost more than the unpickle
    itself (and scan only objects that cannot yet be garbage).  Pausing
    collection around the load keeps rehydration an order of magnitude
    under a fresh Phase-1 build.
    """
    enabled = gc.isenabled()
    if enabled:
        gc.disable()
    try:
        return pickle.loads(data)
    finally:
        if enabled:
            gc.enable()


def _spawn_echo(value):
    """Importable identity helper for the spawn-context pickling tests:
    a spawn worker re-imports this module and resolves the function by
    qualified name, so round-tripping through it proves the argument and
    the return value both cross a spawn process boundary."""
    return value
