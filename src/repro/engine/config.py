"""One frozen configuration object for the whole reasoning engine.

Before the engine layer existed, pipeline knobs were threaded ad hoc:
``strategy`` and ``size_limit`` through ``Reasoner.__init__`` into
``build_expansion``, the LP backend hard-wired inside
``acceptable_support``, cache bounds as class attributes.  An
:class:`EngineConfig` gathers every knob into a single immutable value that
:class:`~repro.engine.pipeline.Pipeline`,
:class:`~repro.reasoner.satisfiability.Reasoner`, and
:class:`~repro.engine.session.SchemaSession` all share — one object to
construct, log, and compare.

Being frozen (and hashable) it can key caches and travel between sessions
without defensive copying; :meth:`EngineConfig.replace` derives variants.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields, replace
from typing import ClassVar, Optional, Union

from ..core.errors import ReasoningError
from ..obs.tracer import NullTracer, Tracer

__all__ = ["EngineConfig"]


@dataclass(frozen=True)
class EngineConfig:
    """Every knob of the two-phase reasoning pipeline, in one place.

    Parameters
    ----------
    strategy:
        Compound-class enumeration strategy — ``"auto"`` (default),
        ``"naive"``, ``"strategic"``, or ``"hierarchy"``.
    size_limit:
        Optional guard on the expansion size; exceeding it raises
        :class:`~repro.core.errors.ReasoningError` instead of running out
        of memory on adversarial schemas.
    lp_backend:
        Registered LP backend answering the max-support rounds, by name or
        parameterized spec (``"auto"``, ``"exact"``, ``"exact-sparse"``,
        ``"float-fallback"``, ``"auto:limit=500"`` — see
        :mod:`repro.linear.backends`).
    incremental_augmented:
        Reuse the compound classes of clusters untouched by a query class
        when answering augmented (cross-cluster) queries.
    use_propagation / merge_columns:
        The two support-computation optimizations; disabled only by the
        ablation benchmarks, never changing verdicts.
    augmented_cache_limit:
        Bound on the per-reasoner memoized formula-verdict cache.
    session_cache_limit:
        Bound on the per-session LRU of warm reasoner pipelines.
    trace:
        Observability switch — ``False`` (default, near-zero cost),
        ``True`` (each session/pipeline records into a fresh
        :class:`~repro.obs.tracer.Tracer`), or a ``Tracer`` instance (one
        shared bus across sessions and pipelines).  Excluded from
        equality/hashing: tracing never changes results, so a traced and
        an untraced config are the same cache key.
    artifact_dir:
        Directory of the fingerprint-keyed
        :class:`~repro.engine.artifact.ArtifactCache` of precompiled
        pipeline snapshots; ``None`` (the library default) leaves disk
        caching off.  The CLI defaults it to
        :func:`~repro.engine.artifact.default_artifact_dir`
        (``~/.cache/repro``).  Excluded from equality/hashing for the
        same reason as ``trace``: the cache changes cold-start cost,
        never verdicts.
    """

    strategy: str = "auto"
    size_limit: Optional[int] = None
    lp_backend: str = "auto"
    incremental_augmented: bool = True
    use_propagation: bool = True
    merge_columns: bool = True
    augmented_cache_limit: int = 256
    session_cache_limit: int = 32
    trace: Union[bool, Tracer, NullTracer] = field(
        default=False, compare=False)
    artifact_dir: Optional[str] = field(default=None, compare=False)

    #: The recognized enumeration strategies (see ``repro.expansion``).
    STRATEGIES: ClassVar[tuple[str, ...]] = (
        "auto", "naive", "strategic", "hierarchy")

    def __post_init__(self) -> None:
        if self.strategy not in self.STRATEGIES:
            raise ReasoningError(
                f"unknown enumeration strategy {self.strategy!r}; "
                f"expected one of {', '.join(self.STRATEGIES)}")
        if self.size_limit is not None and self.size_limit < 1:
            raise ReasoningError(
                f"size_limit must be positive, got {self.size_limit}")
        if self.augmented_cache_limit < 1:
            raise ReasoningError(
                "augmented_cache_limit must be positive, got "
                f"{self.augmented_cache_limit}")
        if self.session_cache_limit < 1:
            raise ReasoningError(
                "session_cache_limit must be positive, got "
                f"{self.session_cache_limit}")
        # Resolving the backend validates the name against the registry
        # (raising LinearSystemError on an unknown one) without importing
        # the linear layer at module-import time.
        from ..linear.backends import get_backend

        get_backend(self.lp_backend)
        if not isinstance(self.trace, (bool, Tracer, NullTracer)):
            raise ReasoningError(
                f"trace must be a bool or a Tracer, got {self.trace!r}")
        if self.artifact_dir is not None:
            if not isinstance(self.artifact_dir, (str, os.PathLike)):
                raise ReasoningError(
                    f"artifact_dir must be a path or None, "
                    f"got {self.artifact_dir!r}")
            # Normalize to a plain string so the frozen value pickles
            # identically across processes and renders in as_dict().
            object.__setattr__(self, "artifact_dir",
                               os.fspath(self.artifact_dir))

    def tracer(self) -> Union[Tracer, NullTracer]:
        """Resolve :attr:`trace` to a tracer instance (``True`` yields a
        fresh :class:`~repro.obs.tracer.Tracer` per call)."""
        from ..obs.tracer import as_tracer

        return as_tracer(self.trace)

    def replace(self, **overrides) -> "EngineConfig":
        """A copy with the given fields replaced (validation re-runs)."""
        return replace(self, **overrides)

    def as_dict(self) -> dict:
        """A plain-dict rendering (stable key order) for logs and JSON.

        ``trace`` is rendered as a plain bool (a tracer instance is not a
        serializable configuration value)."""
        payload = {spec.name: getattr(self, spec.name)
                   for spec in fields(self)}
        payload["trace"] = bool(payload["trace"]
                                if isinstance(payload["trace"], bool)
                                else getattr(payload["trace"], "enabled",
                                             False))
        return payload
