"""The staged reasoning pipeline: tables → expansion → Ψ_S → support.

The paper's two-phase procedure factors into four artifacts, each a pure
function of the schema, the :class:`~repro.engine.config.EngineConfig`, and
the previous artifact:

====================  ==================================================
stage                 artifact
====================  ==================================================
``tables``            preselection tables (inclusion/disjointness, §4.3)
``expansion``         the expansion ``S̄`` (Definition 3.1)
``system``            the disequation system ``Ψ_S`` (Theorem 3.3)
``support``           the maximal acceptable support + witness
====================  ==================================================

:class:`Pipeline` makes each stage an explicit, lazily built, cached, and
timed artifact via the :class:`PipelineStage` descriptor: first access
resolves the stage's prerequisites (outside its own timing window), builds
the artifact inside a named :class:`~repro.core.timing.StageTimer` stage,
and caches it for the pipeline's lifetime.  A pipeline is append-only —
artifacts are never invalidated; build a new pipeline for a new schema or
config (sessions handle the caching of whole pipelines).

Schema-level derived structures that several consumers share — the clusters
of ``G_S``, the per-cluster compound-class grouping, the effective-hierarchy
test — live here too, as do the *seeding* hooks of the incremental
augmented-query optimization (a seeded pipeline starts with prebuilt tables
and precomputed compound classes instead of cold stages).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Union

from ..core.schema import Schema
from ..core.timing import StageTimer
from ..expansion.expansion import (Expansion, build_expansion,
                                   build_expansion_delta)
from ..expansion.tables import SchemaTables, build_tables
from ..linear.support import SupportResult, acceptable_support
from ..linear.system import PsiSystem, build_system
from ..obs.tracer import NullTracer, Tracer, as_tracer
from .config import EngineConfig
from .stats import PipelineStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .artifact import CompiledSchema

__all__ = ["Pipeline", "PipelineStage"]

#: A stage prerequisite: a stage name, or a callable mapping the pipeline to
#: a stage name (or None to skip) — for config-dependent prerequisites.
Prerequisite = Union[str, Callable[["Pipeline"], Optional[str]]]


class PipelineStage:
    """Descriptor: one lazily built, cached, timed pipeline artifact.

    ``requires`` names the stages to resolve *before* this stage's timing
    window opens, so per-stage readings never nest (the expansion reading
    excludes the tables build it depends on).  Entries may be callables for
    prerequisites that depend on the configuration.
    """

    def __init__(self, *requires: Prerequisite):
        self._requires = requires

    def __call__(self, build):
        self._build = build
        self.__doc__ = build.__doc__
        return self

    def __set_name__(self, owner, name: str) -> None:
        self._name = name

    def __get__(self, pipeline: Optional["Pipeline"], owner=None):
        if pipeline is None:
            return self
        artifacts = pipeline._artifacts
        if self._name not in artifacts:
            for requirement in self._requires:
                if callable(requirement):
                    requirement = requirement(pipeline)
                if requirement is not None:
                    getattr(pipeline, requirement)
            with pipeline.tracer.span(f"pipeline.{self._name}"):
                with pipeline.timer.stage(self._name):
                    artifacts[self._name] = self._build(pipeline)
            # Outside the timing window: persistence hooks must not count
            # as stage cost.
            pipeline._stage_built(self._name)
        return artifacts[self._name]


def _expansion_needs_tables(pipeline: "Pipeline") -> Optional[str]:
    if (pipeline.config.strategy != "naive"
            and pipeline._precomputed_classes is None):
        return "tables"
    return None


class Pipeline:
    """The staged decision procedure for one schema under one config.

    All stages are lazy: constructing a pipeline costs nothing, and each
    artifact is built on first access (``pipeline.support`` pulls the whole
    chain).  ``pipeline.timer`` accumulates per-stage wall-clock readings.
    """

    #: Stage names in build order (artifact attributes on instances).
    STAGES = ("tables", "expansion", "system", "support")

    def __init__(self, schema: Schema, config: Optional[EngineConfig] = None,
                 *, timer: Optional[StageTimer] = None,
                 tracer: Optional[Union[Tracer, NullTracer]] = None):
        self.schema = schema
        self.config = config if config is not None else EngineConfig()
        self.timer = timer if timer is not None else StageTimer()
        # Explicit tracer > config.trace > ambient tracer (NULL by default).
        self.tracer = (tracer if tracer is not None
                       else as_tracer(self.config.trace))
        self._artifacts: dict[str, object] = {}
        # Fired once, with this pipeline, right after the `system` stage
        # builds — the hook sessions and workers use to persist a
        # CompiledSchema snapshot the moment Phase 1/2 completes, without
        # eagerly forcing any stage themselves (an eager build would
        # escape the caller's per-query budget scope).
        self.on_system_built: Optional[Callable[["Pipeline"], None]] = None
        # Seeds of the incremental augmented-query path (see seed_augmented).
        self._precomputed_classes: Optional[tuple] = None
        # Seeds of the diff-aware revalidation path (see recompile_from):
        # a partial-expansion plan, an optional support-block graft, and
        # the reuse accounting surfaced in RevalidationReports.
        self._expansion_delta = None
        self._support_seed = None
        self.delta_stats: dict = {}
        # The query-rewriting closure (built on demand by closure_index).
        self._closure_index = None
        # Schema-level derived structures, shared by several consumers.
        self._clusters: Optional[list[frozenset]] = None
        self._cluster_map: Optional[dict] = None
        self._cluster_compound_map: Optional[dict] = None
        self._hierarchy_effective: Optional[bool] = None

    def built_stages(self) -> tuple[str, ...]:
        """The stages whose artifacts exist already (in build order)."""
        return tuple(name for name in self.STAGES if name in self._artifacts)

    def _stage_built(self, name: str) -> None:
        """Stage-completion dispatch (called by :class:`PipelineStage`)."""
        if name == "system" and self.on_system_built is not None:
            callback, self.on_system_built = self.on_system_built, None
            callback(self)

    # ------------------------------------------------------------------
    # Compiled snapshots (precomputed Phase-1/Phase-2 artifacts)
    # ------------------------------------------------------------------
    def compile(self) -> "CompiledSchema":
        """A frozen, picklable snapshot of this pipeline's Phase-1/Phase-2
        products: tables, expansion, ``Ψ_S``, and the cluster/hierarchy
        metadata (building any that are missing).  The support is *not*
        included — a rehydrated pipeline recomputes it under its own LP
        configuration, so one snapshot serves every backend.
        """
        from .artifact import (ARTIFACT_SCHEMA_VERSION, CompiledSchema,
                               SupportSnapshot, config_fingerprint)
        from .session import schema_fingerprint

        tables = self.tables
        expansion = self.expansion
        system = self.system
        # The support rides along only when it is already solved: the
        # persist-on-system-built hook must never force Phase 2, but a
        # fully answered pipeline's verdicts are worth keeping — they are
        # what delta revalidation grafts into the next schema version.
        support = self._artifacts.get("support")
        snapshot = (SupportSnapshot.from_result(support)
                    if support is not None else None)
        self.is_hierarchy()  # resolve the §4.4 flag into the snapshot
        self.tracer.add("artifact.build")
        return CompiledSchema(
            schema_version=ARTIFACT_SCHEMA_VERSION,
            fingerprint=schema_fingerprint(self.schema),
            config_fingerprint=config_fingerprint(self.config),
            config=self.config.replace(trace=False),
            schema=self.schema,
            tables=tables,
            expansion=expansion,
            system=system,
            clusters=(tuple(self.clusters())
                      if self.config.strategy != "naive" else None),
            hierarchy_effective=self._hierarchy_effective,
            support=snapshot,
            # Like the support: ride along only when already built — a
            # satisfiability-only compile never pays for the closure.
            closure=self._closure_index,
        )

    @classmethod
    def from_artifact(cls, artifact: "CompiledSchema",
                      config: Optional[EngineConfig] = None, *,
                      timer: Optional[StageTimer] = None,
                      tracer: Optional[Union[Tracer, NullTracer]] = None
                      ) -> "Pipeline":
        """A pipeline rehydrated from a compiled snapshot.

        The tables/expansion/system stages are pre-populated from the
        snapshot, so the first query pays only the support computation.
        ``config`` defaults to the snapshot's own; a config whose
        enumeration-shaping knobs differ from the snapshot's raises
        :class:`~repro.core.errors.ReasoningError` (callers going through
        :class:`~repro.engine.artifact.ArtifactCache` never see this — the
        cache keys on the config fingerprint).
        """
        from ..core.errors import ReasoningError
        from .artifact import (ARTIFACT_SCHEMA_VERSION, CompiledSchema,
                               config_fingerprint)

        if not isinstance(artifact, CompiledSchema):
            raise ReasoningError(
                f"expected a CompiledSchema, got {type(artifact).__name__}")
        if artifact.schema_version != ARTIFACT_SCHEMA_VERSION:
            raise ReasoningError(
                f"artifact schema version {artifact.schema_version} does "
                f"not match this engine's {ARTIFACT_SCHEMA_VERSION}")
        config = config if config is not None else artifact.config
        if config_fingerprint(config) != artifact.config_fingerprint:
            raise ReasoningError(
                "artifact was compiled under an incompatible engine "
                "config (strategy/size_limit mismatch)")
        pipeline = cls(artifact.schema, config, timer=timer, tracer=tracer)
        pipeline._artifacts["tables"] = artifact.tables
        pipeline._artifacts["expansion"] = artifact.expansion
        pipeline._artifacts["system"] = artifact.system
        if artifact.support is not None:
            # Stored verdicts are backend-independent (the maximal support
            # is unique), so rehydration may skip Phase 2 entirely.
            pipeline._artifacts["support"] = artifact.support.to_result(
                artifact.system)
        if artifact.clusters is not None:
            pipeline._clusters = list(artifact.clusters)
        pipeline._hierarchy_effective = artifact.hierarchy_effective
        pipeline._closure_index = artifact.closure
        return pipeline

    @classmethod
    def recompile_from(cls, prev: "CompiledSchema", delta,
                       config: Optional[EngineConfig] = None, *,
                       timer: Optional[StageTimer] = None,
                       tracer: Optional[Union[Tracer, NullTracer]] = None
                       ) -> "Pipeline":
        """A pipeline for ``delta.new`` that reuses everything ``prev``
        (the compiled previous version) can still vouch for.

        The diff-aware generalization of :meth:`seed_augmented`: clusters
        of the new schema that match the previous partition verbatim and
        contain no dirty class keep their enumerated compound classes,
        their expansion rows, and (when ``prev`` stored verdicts) their
        ``Ψ_S`` block supports; only touched clusters pay.  Falls back to
        a cold pipeline — same verdicts, no reuse — when the delta path
        does not apply (naive strategy, §4.4 hierarchies, cluster-less
        artifacts).  ``config`` defaults to the snapshot's own and must
        match its enumeration-shaping fingerprint, like
        :meth:`from_artifact`.

        An empty delta short-circuits to :meth:`from_artifact` (full
        reuse).  Reuse accounting lands in ``pipeline.delta_stats`` and
        the ``registry.reuse`` / ``registry.rebuilt`` tracer counters.
        """
        from ..core.errors import ReasoningError
        from .artifact import (ARTIFACT_SCHEMA_VERSION, CompiledSchema,
                               config_fingerprint)
        from .delta import seed_delta

        if not isinstance(prev, CompiledSchema):
            raise ReasoningError(
                f"expected a CompiledSchema, got {type(prev).__name__}")
        if prev.schema_version != ARTIFACT_SCHEMA_VERSION:
            raise ReasoningError(
                f"artifact schema version {prev.schema_version} does "
                f"not match this engine's {ARTIFACT_SCHEMA_VERSION}")
        config = config if config is not None else prev.config
        if config_fingerprint(config) != prev.config_fingerprint:
            raise ReasoningError(
                "previous artifact was compiled under an incompatible "
                "engine config (strategy/size_limit mismatch)")
        from .session import schema_fingerprint
        if prev.fingerprint != schema_fingerprint(delta.old):
            raise ReasoningError(
                "delta.old does not match the schema the previous "
                "artifact was compiled from")
        if delta.is_empty():
            pipeline = cls.from_artifact(prev, config, timer=timer,
                                         tracer=tracer)
            pipeline.delta_stats["mode"] = "unchanged"
            return pipeline
        pipeline = cls(delta.new, config, timer=timer, tracer=tracer)
        if not seed_delta(pipeline, prev, delta):
            pipeline.delta_stats["mode"] = "fresh"
        return pipeline

    # ------------------------------------------------------------------
    # The four artifacts
    # ------------------------------------------------------------------
    @PipelineStage()
    def tables(self) -> SchemaTables:
        """The preselection tables of the schema, built once and shared by
        every pipeline stage (enumeration, clusters, explanations)."""
        return build_tables(self.schema)

    @PipelineStage(_expansion_needs_tables)
    def expansion(self) -> Expansion:
        """The expansion ``S̄``: compound classes, attributes, relations,
        and the merged ``Natt``/``Nrel`` entries."""
        seed = self._expansion_delta
        if seed is not None:
            return build_expansion_delta(
                self.schema, seed.classes, seed.reused, seed.old,
                strategy=self.config.strategy,
                touched_relations=seed.touched_relations,
                size_limit=self.config.size_limit, tracer=self.tracer)
        tables = None
        if _expansion_needs_tables(self) is not None:
            tables = self.tables  # prebuilt by the prerequisite hook
        return build_expansion(
            self.schema, self.config.strategy,
            size_limit=self.config.size_limit, tables=tables,
            precomputed_classes=self._precomputed_classes,
            tracer=self.tracer)

    @PipelineStage("expansion")
    def system(self) -> PsiSystem:
        """The homogeneous disequation system ``Ψ_S`` over the expansion."""
        return build_system(self.expansion)

    @PipelineStage("system")
    def support(self) -> SupportResult:
        """The maximal acceptable support of ``Ψ_S`` plus a witness,
        computed by the configured LP backend (grafting verdicts of
        untouched blocks when the delta path seeded them)."""
        if self._support_seed is not None:
            from .delta import merge_support

            return merge_support(
                self.system, self._support_seed,
                backend=self.config.lp_backend,
                use_propagation=self.config.use_propagation,
                merge_columns=self.config.merge_columns,
                tracer=self.tracer, stats=self.delta_stats)
        return acceptable_support(
            self.system, backend=self.config.lp_backend,
            use_propagation=self.config.use_propagation,
            merge_columns=self.config.merge_columns,
            hierarchy=self.is_hierarchy(),
            tracer=self.tracer)

    # ------------------------------------------------------------------
    # Query-rewriting closure
    # ------------------------------------------------------------------
    def closure_index(self):
        """The query-rewriting :class:`~repro.qa.closure.ClosureIndex` of
        this schema, built on first use (forcing the support stage) and
        cached for the pipeline's lifetime.  Rides inside
        :meth:`compile` snapshots once built, so artifact-cache hits skip
        the classification entirely."""
        if self._closure_index is None:
            from ..qa.closure import closure_for_pipeline

            self._closure_index = closure_for_pipeline(self)
        return self._closure_index

    # ------------------------------------------------------------------
    # Shared schema-level structures
    # ------------------------------------------------------------------
    def is_hierarchy(self) -> bool:
        """Does the §4.4 closed form apply (strategy permitting)?"""
        if self._hierarchy_effective is None:
            if self.config.strategy in ("auto", "hierarchy"):
                from ..expansion.graph import hierarchy_compound_classes

                self._hierarchy_effective = (
                    hierarchy_compound_classes(self.schema, self.tables)
                    is not None)
            else:
                self._hierarchy_effective = False
        return self._hierarchy_effective

    def clusters(self) -> list[frozenset]:
        """The clusters of ``G_S`` (Theorem 4.6), computed once over the
        shared preselection tables and cached."""
        if self._clusters is None:
            from ..expansion.graph import clusters

            self._clusters = clusters(self.schema, self.tables)
        return self._clusters

    def cluster_of(self) -> dict:
        """Class name → index of its cluster in :meth:`clusters`."""
        if self._cluster_map is None:
            mapping: dict = {}
            for index, component in enumerate(self.clusters()):
                for name in component:
                    mapping[name] = index
            self._cluster_map = mapping
        return self._cluster_map

    def compounds_by_cluster(self) -> dict:
        """Nonempty compound classes of the expansion grouped by the cluster
        containing them — the reuse units of incremental augmented queries.
        Only meaningful when the enumeration was cluster-confined
        (strategic)."""
        if self._cluster_compound_map is None:
            mapping = self.cluster_of()
            grouped: dict = {}
            for members in self.expansion.compound_classes:
                if not members:
                    continue
                grouped.setdefault(mapping[next(iter(members))],
                                   []).append(members)
            self._cluster_compound_map = grouped
        return self._cluster_compound_map

    # ------------------------------------------------------------------
    # Incremental augmented-query seeding
    # ------------------------------------------------------------------
    def can_seed_augmented(self, cdef) -> bool:
        """Is the incremental path applicable?  Requires a fresh query class
        and a cluster-confined (strategic) base enumeration that has already
        been built — otherwise a cold build is both needed and cheapest."""
        return (self.config.incremental_augmented
                and "expansion" in self._artifacts
                and self.config.strategy in ("auto", "strategic")
                and not self.is_hierarchy()
                and cdef.name not in self.schema.class_symbols)

    def seed_augmented(self, target: "Pipeline", cdef) -> None:
        """Seed ``target`` (the pipeline of this schema plus ``cdef``)
        incrementally: preselection tables are extended by one row instead
        of rebuilt, and compound classes of every cluster the query class
        does not touch are reused verbatim — only the merged cluster is
        re-enumerated.  The seeding is an optimization only; verdicts are
        identical to a cold rebuild (the equivalence suite asserts this)."""
        from ..expansion.enumerate import dpll_compound_classes
        from ..expansion.graph import clusters as compute_clusters

        with self.tracer.span("pipeline.augmented_seed"), \
                self.timer.stage("augmented_seed"):
            aug_tables = self.tables.extended_with(target.schema, cdef.name)
            aug_clusters = compute_clusters(target.schema, aug_tables)
            base_index = {component: index
                          for index, component in enumerate(self.clusters())}
            grouped = self.compounds_by_cluster()
            combined: list[frozenset] = [frozenset()]
            for component in aug_clusters:
                base_at = base_index.get(component)
                if base_at is not None:
                    # Untouched cluster: same universe, same definitions,
                    # same table rows — the enumeration result is reusable.
                    combined.extend(grouped.get(base_at, ()))
                else:
                    combined.extend(
                        members for members in dpll_compound_classes(
                            target.schema, sorted(component), aug_tables)
                        if members)
        target._artifacts["tables"] = aug_tables
        target._clusters = aug_clusters
        target._hierarchy_effective = False
        target._precomputed_classes = tuple(combined)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> PipelineStats:
        """Pipeline size measurements (builds any missing stage), plus the
        per-stage wall-clock readings of :attr:`timer`, as a typed
        :class:`~repro.engine.stats.PipelineStats` payload."""
        return PipelineStats(
            classes=len(self.schema.class_symbols),
            schema_size=self.schema.syntactic_size(),
            compound_classes=len(self.expansion.compound_classes),
            expansion_size=self.expansion.size(),
            psi_unknowns=self.system.n_unknowns(),
            psi_constraints=self.system.n_constraints(),
            psi_size=self.system.size(),
            lp_rounds=self.support.rounds,
            supported=len(self.support.support),
            lp_backend=self.support.backend_used,
            timings=self.timer.readings(),
        )
