"""The batch executor: bounded, parallel, failure-isolated query batches.

The service contract this module implements (following the batched
query-answering services of the ER/DL literature — Calì & Martinenghi's
query answering over extended ER schemata, Artale et al.'s DL reasoning
services for databases):

* a **batch** of independent ``(schema, formula)`` queries is answered as
  one call, fanned out across a worker pool;
* every query is governed by a cooperative
  :class:`~repro.core.budget.Budget` (wall-clock deadline and/or step
  bound), so a pathological schema — the paper's Section 4 EXPTIME-hard
  constructions — costs a bounded slice of one worker, never a pinned
  service;
* every query yields a typed, frozen :class:`QueryOutcome` — verdict,
  error, duration, stats — and one malformed or timed-out query never
  kills its batch.

Parallelism is **sharded by schema fingerprint**: queries against the same
schema travel together to one worker, which builds that schema's pipeline
once and answers the whole shard against the warm support (exactly the
reuse :meth:`~repro.engine.session.SchemaSession.check_many` exploits
serially).  Workers start *warm* whenever possible: a shard whose schema
the parent session has already compiled ships the precompiled
:class:`~repro.engine.artifact.CompiledSchema` snapshot in its payload
(one unpickle beats a re-parse/re-expand by an order of magnitude), and a
cold worker consults the disk artifact cache before building from source.  The pool is a :class:`concurrent.futures.ProcessPoolExecutor`
by default — the pipeline is pure CPU-bound Python, so processes are the
only way to real parallelism — with a thread-pool and a serial fallback
when process pools are unavailable (restricted sandboxes, interpreters
without ``fork``/``spawn``); a broken pool degrades to in-process
execution instead of failing the batch.

Tracer counters (``executor.*``): ``tasks_dispatched``, ``shards``,
``tasks_completed``, ``tasks_timed_out``, ``tasks_failed``,
``pool_reuse``, ``pool_fallbacks``, and ``budget_checks`` (total hot-loop
ticks spent by the batch).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Sequence, Union

from ..core import errors as _errors
from ..core.budget import NULL_BUDGET, Budget, use_budget
from ..core.errors import BudgetExceeded, CarError, ParseError
from ..core.formulas import Formula, as_formula
from ..core.schema import Schema
from ..obs.tracer import NullTracer, Tracer, as_tracer
from .config import EngineConfig
from .stats import PipelineStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .session import SchemaSession

__all__ = ["BatchExecutor", "BatchQuery", "QueryError", "QueryOutcome"]


# ----------------------------------------------------------------------
# The typed batch-query API
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BatchQuery:
    """One unit of batch work: a formula-satisfiability question.

    ``schema`` is a parsed :class:`~repro.core.schema.Schema` or
    concrete-syntax source text; ``formula`` a parsed
    :class:`~repro.core.formulas.Formula`.  Use :meth:`coerce` to accept
    the looser shapes batch drivers see (dicts from JSONL, 2-tuples,
    formula source text).
    """

    schema: Union[Schema, str]
    formula: Formula

    @classmethod
    def coerce(cls, value: "BatchQueryLike") -> "BatchQuery":
        """Coerce a query-like value to a :class:`BatchQuery`.

        Accepted shapes: a ``BatchQuery``; a ``(schema, formula)`` pair; a
        mapping with ``"schema"`` and ``"formula"`` keys (the JSONL line
        shape of ``repro batch``).  String formulas go through the
        concrete-syntax parser, so ``"A and not B"`` works, not just bare
        class names.
        """
        if isinstance(value, cls):
            return value
        if isinstance(value, dict):
            try:
                schema, formula = value["schema"], value["formula"]
            except KeyError as exc:
                raise ParseError(
                    f"batch query object needs a {exc.args[0]!r} key") from None
        elif isinstance(value, Sequence) and not isinstance(value, str) \
                and len(value) == 2:
            schema, formula = value
        else:
            raise ParseError(
                f"cannot interpret {value!r} as a batch query; expected "
                f"a BatchQuery, a (schema, formula) pair, or a mapping "
                f"with 'schema' and 'formula' keys")
        if not isinstance(schema, (Schema, str)):
            raise ParseError(
                f"batch query schema must be a Schema or source text, "
                f"got {type(schema).__name__}")
        if isinstance(formula, str):
            from ..parser.parser import parse_formula

            formula = parse_formula(formula)
        else:
            formula = as_formula(formula)
        return cls(schema, formula)


#: Anything :meth:`BatchQuery.coerce` accepts.
BatchQueryLike = Union[BatchQuery, tuple, dict]


@dataclass(frozen=True)
class QueryError:
    """A picklable rendering of the exception one query died with.

    ``kind`` is the exception class name (a member of the
    :mod:`repro.core.errors` hierarchy, or an arbitrary class name for
    unexpected internal failures); ``exit_code`` its stable sysexit code;
    ``steps`` the hot-loop work performed before a budget tripped (only
    for :class:`~repro.core.errors.BudgetExceeded`).
    """

    kind: str
    message: str
    exit_code: int
    steps: Optional[int] = None

    @classmethod
    def from_exception(cls, exc: BaseException) -> "QueryError":
        exit_code = getattr(exc, "exit_code", CarError.exit_code)
        steps = getattr(exc, "steps", None)
        return cls(type(exc).__name__, str(exc), exit_code, steps)

    def to_exception(self) -> CarError:
        """Reconstruct a raisable error of the recorded kind.

        Unknown kinds (an unexpected internal exception in a worker)
        surface as plain :class:`~repro.core.errors.CarError` so callers
        still get a member of the library hierarchy.
        """
        klass = getattr(_errors, self.kind, None)
        if klass is None or not (isinstance(klass, type)
                                 and issubclass(klass, CarError)):
            return CarError(f"{self.kind}: {self.message}")
        if klass is BudgetExceeded:
            return BudgetExceeded(self.message, steps=self.steps)
        if klass is ParseError:
            return ParseError(self.message)
        return klass(self.message)

    def to_json(self) -> dict:
        return {"kind": self.kind, "message": self.message,
                "exit_code": self.exit_code, "steps": self.steps}


@dataclass(frozen=True)
class QueryOutcome:
    """The typed result of one batch query — verdict *or* error, never both.

    ``verdict`` is the satisfiability answer (None when the query failed);
    ``error`` carries the failure (None on success); ``duration`` the
    per-query wall-clock seconds; ``steps`` the hot-loop budget ticks the
    query consumed; ``stats`` a
    :class:`~repro.engine.stats.PipelineStats` snapshot of the pipeline
    that answered (None when the pipeline never finished building);
    ``schema_fingerprint`` correlates outcomes that shared a warm pipeline.
    """

    index: int
    verdict: Optional[bool]
    error: Optional[QueryError] = None
    duration: float = 0.0
    steps: int = 0
    stats: Optional[PipelineStats] = None
    schema_fingerprint: Optional[str] = None

    @property
    def ok(self) -> bool:
        """Did the query produce a verdict?"""
        return self.error is None

    @property
    def timed_out(self) -> bool:
        """Did the query die on its budget (deadline or step bound)?"""
        return self.error is not None and self.error.kind == "BudgetExceeded"

    def require(self) -> bool:
        """The verdict — or the carried error, raised.

        This is the access point :meth:`SchemaSession.check_many
        <repro.engine.session.SchemaSession.check_many>` funnels through:
        a failed query stays quiet until its result is actually used.
        """
        if self.error is not None:
            raise self.error.to_exception()
        return self.verdict

    def to_json(self) -> dict:
        """A flat, JSON-able rendering (the ``repro batch`` JSONL line)."""
        return {
            "index": self.index,
            "verdict": self.verdict,
            "error": self.error.to_json() if self.error else None,
            "timed_out": self.timed_out,
            "duration_s": self.duration,
            "steps": self.steps,
            "schema_fingerprint": self.schema_fingerprint,
            "stats": self.stats.to_json() if self.stats else None,
        }


# ----------------------------------------------------------------------
# The worker function (module-level: must be picklable by the pool)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class _ShardPayload:
    """Everything one worker needs to answer one schema's queries.

    ``artifact`` optionally carries the parent's precompiled
    :class:`~repro.engine.artifact.CompiledSchema` snapshot, so the worker
    unpickles warm Phase-1/Phase-2 stage products (one unpickle per worker
    per schema) instead of re-parsing and re-expanding the source text.
    """

    schema_source: str
    fingerprint: str
    queries: tuple[tuple[int, Formula], ...]
    config: EngineConfig
    deadline: Optional[float]
    max_steps: Optional[int]
    collect_stats: bool = True
    artifact: Optional[object] = None


def _shard_reasoner(payload: _ShardPayload):
    """The worker's reasoner for one shard, warmest available route first:
    the shipped snapshot, then the disk artifact cache, then a fresh build
    (which persists its own snapshot for the next cold worker)."""
    from ..parser.parser import parse_schema
    from ..reasoner.satisfiability import Reasoner
    from .artifact import ArtifactCache
    from .pipeline import Pipeline

    config = payload.config
    if payload.artifact is not None:
        try:
            pipeline = Pipeline.from_artifact(payload.artifact, config)
            return Reasoner.from_pipeline(pipeline)
        except CarError:
            pass  # incompatible snapshot: fall through to a real build
    cache = ArtifactCache.from_config(config)
    if cache is not None:
        artifact = cache.load(payload.fingerprint, config)
        if artifact is not None:
            return Reasoner.from_pipeline(
                Pipeline.from_artifact(artifact, config))
    schema = parse_schema(payload.schema_source)
    reasoner = Reasoner(schema, config=config)
    if cache is not None:
        reasoner.pipeline.on_system_built = (
            lambda built: cache.store(built.compile()))
    return reasoner


def _run_shard(payload: _ShardPayload) -> list[QueryOutcome]:
    """Answer one schema shard: rehydrate or build the pipeline once,
    answer each query under a fresh budget, isolate every failure into
    its outcome."""
    try:
        reasoner = _shard_reasoner(payload)
    except CarError as exc:
        error = QueryError.from_exception(exc)
        return [QueryOutcome(index, None, error,
                             schema_fingerprint=payload.fingerprint)
                for index, _ in payload.queries]
    return [_answer_with_reasoner(reasoner, index, formula,
                                  payload.deadline, payload.max_steps,
                                  payload.collect_stats,
                                  payload.fingerprint)
            for index, formula in payload.queries]


# ----------------------------------------------------------------------
# The executor
# ----------------------------------------------------------------------
class BatchExecutor:
    """Fan a batch of queries out across a worker pool, under budgets.

    Parameters
    ----------
    config:
        The :class:`~repro.engine.config.EngineConfig` every worker's
        pipeline runs under (tracing is stripped before crossing a process
        boundary — tracers are not picklable and per-worker traces would
        be lost anyway).
    jobs:
        Worker count.  ``1`` (the default) runs serially in-process;
        ``None`` means one worker per CPU.
    mode:
        ``"process"`` (real parallelism, the default for ``jobs > 1``),
        ``"thread"`` (GIL-bound; isolation without processes),
        ``"serial"``, or ``"auto"`` — processes when ``jobs > 1``, serial
        otherwise, degrading process→thread→serial when pools cannot be
        created.
    deadline / max_steps:
        Default per-query budget, overridable per :meth:`run` call.
    tracer:
        Observability bus for the ``executor.*`` counters.

    The executor keeps its pool warm across :meth:`run` calls
    (``executor.pool_reuse``); use it as a context manager, or call
    :meth:`close`, to shut the pool down deterministically.
    """

    _MODES = ("auto", "process", "thread", "serial")

    def __init__(self, config: Optional[EngineConfig] = None, *,
                 jobs: Optional[int] = 1, mode: str = "auto",
                 deadline: Optional[float] = None,
                 max_steps: Optional[int] = None,
                 tracer: Optional[Union[Tracer, NullTracer]] = None):
        if mode not in self._MODES:
            raise CarError(f"unknown executor mode {mode!r}; expected one "
                           f"of {', '.join(self._MODES)}")
        if jobs is None:
            import os

            jobs = os.cpu_count() or 1
        if jobs < 1:
            raise CarError(f"jobs must be positive, got {jobs}")
        self.config = config if config is not None else EngineConfig()
        self.jobs = jobs
        self.mode = mode
        self.deadline = deadline
        self.max_steps = max_steps
        self._tracer = (tracer if tracer is not None
                        else as_tracer(self.config.trace))
        self._pool = None
        self._pool_kind: Optional[str] = None

    # -- pool management ------------------------------------------------
    def _effective_mode(self) -> str:
        if self.mode != "auto":
            return self.mode
        return "process" if self.jobs > 1 else "serial"

    def _ensure_pool(self) -> Optional[object]:
        """The warm pool, creating it on demand; None means run serially.

        Creation failures degrade process → thread → serial and are
        counted as ``executor.pool_fallbacks``.
        """
        mode = self._effective_mode()
        if mode == "serial":
            return None
        if self._pool is not None:
            self._tracer.add("executor.pool_reuse")
            return self._pool
        import concurrent.futures as futures

        if mode == "process":
            try:
                self._pool = futures.ProcessPoolExecutor(
                    max_workers=self.jobs)
                self._pool_kind = "process"
                return self._pool
            except (OSError, ValueError, ImportError):
                self._tracer.add("executor.pool_fallbacks")
                mode = "thread"
        if mode == "thread":
            try:
                self._pool = futures.ThreadPoolExecutor(
                    max_workers=self.jobs)
                self._pool_kind = "thread"
                return self._pool
            except (OSError, ValueError):
                self._tracer.add("executor.pool_fallbacks")
        return None

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
            self._pool_kind = None

    def __enter__(self) -> "BatchExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def pool_kind(self) -> Optional[str]:
        """``"process"``/``"thread"`` once a pool exists, else None."""
        return self._pool_kind

    # -- the batch entry point ------------------------------------------
    def run(self, queries: Iterable[BatchQueryLike], *,
            deadline: Optional[float] = None,
            max_steps: Optional[int] = None,
            collect_stats: bool = True,
            session: Optional["SchemaSession"] = None) -> list[QueryOutcome]:
        """Answer a batch; outcomes come back in input order.

        ``deadline``/``max_steps`` override the executor defaults for this
        batch (each query gets a *fresh* budget of that size).  ``session``
        optionally names a warm :class:`~repro.engine.session.SchemaSession`
        to answer serial shards through, so in-process execution reuses its
        pipeline cache.

        Failure isolation: a query that cannot even be coerced, a schema
        that does not parse, a budget that trips, an internal error — each
        becomes an error-carrying :class:`QueryOutcome`; the batch always
        returns exactly one outcome per input query.
        """
        deadline = deadline if deadline is not None else self.deadline
        max_steps = max_steps if max_steps is not None else self.max_steps
        tracer = self._tracer

        outcomes: dict[int, QueryOutcome] = {}
        shards = self._shard(queries, outcomes, deadline, max_steps,
                             collect_stats, session)
        tracer.add("executor.tasks_dispatched",
                   len(outcomes) + sum(len(p.queries) for p in shards))
        tracer.add("executor.shards", len(shards))

        pool = self._ensure_pool() if shards else None
        if pool is None:
            for payload in shards:
                for outcome in self._run_serial(payload, session):
                    outcomes[outcome.index] = outcome
        else:
            import concurrent.futures as futures

            pending = {pool.submit(_run_shard, payload): payload
                       for payload in shards}
            for future in futures.as_completed(pending):
                payload = pending[future]
                try:
                    shard_outcomes = future.result()
                except CarError as exc:
                    error = QueryError.from_exception(exc)
                    shard_outcomes = [
                        QueryOutcome(index, None, error,
                                     schema_fingerprint=payload.fingerprint)
                        for index, _ in payload.queries]
                except Exception:
                    # A broken pool (killed worker, unpicklable payload,
                    # missing fork support) — degrade to in-process
                    # execution for this shard rather than fail the batch.
                    tracer.add("executor.pool_fallbacks")
                    shard_outcomes = self._run_serial(payload, session)
                for outcome in shard_outcomes:
                    outcomes[outcome.index] = outcome

        results = [outcomes[index] for index in sorted(outcomes)]
        tracer.add("executor.tasks_completed",
                   sum(1 for o in results if o.ok))
        tracer.add("executor.tasks_timed_out",
                   sum(1 for o in results if o.timed_out))
        tracer.add("executor.tasks_failed",
                   sum(1 for o in results if not o.ok and not o.timed_out))
        tracer.add("executor.budget_checks",
                   sum(o.steps for o in results))
        return results

    # -- internals ------------------------------------------------------
    def _shard(self, queries: Iterable[BatchQueryLike],
               outcomes: dict[int, QueryOutcome],
               deadline: Optional[float], max_steps: Optional[int],
               collect_stats: bool,
               session: Optional["SchemaSession"] = None
               ) -> list[_ShardPayload]:
        """Coerce and group queries by schema fingerprint.

        Queries that fail to coerce (bad shape, unparseable schema or
        formula) are deposited straight into ``outcomes`` — they never
        reach a worker.  When a ``session`` is given and the shards are
        headed for a pool, each payload is stamped with the session's
        precompiled snapshot of its schema (only if one is already warm —
        cold schemas are cheaper to build in the worker than to build in
        the parent and ship).
        """
        from ..parser.printer import render_schema
        from .session import _as_schema, schema_fingerprint

        grouped: dict[str, tuple[str, list[tuple[int, Formula]]]] = {}
        for index, raw in enumerate(queries):
            try:
                query = BatchQuery.coerce(raw)
                schema = _as_schema(query.schema)
                fingerprint = schema_fingerprint(schema)
            except CarError as exc:
                outcomes[index] = QueryOutcome(
                    index, None, QueryError.from_exception(exc))
                continue
            if fingerprint not in grouped:
                source = (query.schema if isinstance(query.schema, str)
                          else render_schema(schema))
                grouped[fingerprint] = (source, [])
            grouped[fingerprint][1].append((index, query.formula))
        attach = session is not None and self._effective_mode() != "serial"
        return [
            _ShardPayload(source, fingerprint, tuple(members),
                          self.config.replace(trace=False), deadline,
                          max_steps, collect_stats,
                          artifact=(session.peek_compiled(fingerprint)
                                    if attach else None))
            for fingerprint, (source, members) in grouped.items()
        ]

    def _run_serial(self, payload: _ShardPayload,
                    session: Optional["SchemaSession"]) -> list[QueryOutcome]:
        """In-process shard execution, through ``session`` when given (so
        the serial path shares its warm pipeline cache)."""
        if session is None:
            return _run_shard(payload)
        return session._answer_shard(payload)


def _answer_with_reasoner(reasoner, index: int, formula: Formula,
                          deadline: Optional[float],
                          max_steps: Optional[int], collect_stats: bool,
                          fingerprint: Optional[str]) -> QueryOutcome:
    """One budgeted, failure-isolated query against a warm reasoner —
    shared by the worker path and the in-session serial path."""
    budgeted = deadline is not None or max_steps is not None
    budget = Budget(deadline, max_steps) if budgeted else NULL_BUDGET
    start = time.perf_counter()
    verdict: Optional[bool] = None
    error: Optional[QueryError] = None
    try:
        with use_budget(budget):
            verdict = reasoner.is_formula_satisfiable(formula)
    except CarError as exc:
        error = QueryError.from_exception(exc)
    except Exception as exc:  # noqa: BLE001 - isolation boundary
        error = QueryError.from_exception(exc)
    duration = time.perf_counter() - start
    stats = reasoner.stats() if error is None and collect_stats else None
    return QueryOutcome(index, verdict, error, duration, budget.steps,
                        stats, fingerprint)
