"""Schema deltas and diff-aware incremental revalidation.

The paper's cluster decomposition (Theorem 4.6) promises that an edit
confined to one cluster of ``G_S`` need not pay for the others; the
incremental augmented-query path (`Pipeline.seed_augmented`) already
cashes that promise for the special case "one fresh query class".  This
module generalizes it to arbitrary edits between two schema *versions*:

* :class:`SchemaDelta` — the structural diff of two schemas: added,
  removed, and changed class and relation definitions, plus the derived
  **dirty class set** (every class whose preselection rows, enumeration,
  or cardinality entries could have changed);
* :func:`seed_delta` — plans the reuse for a new pipeline: clusters of
  the new schema that exist verbatim in the previous version's partition
  and contain no dirty class keep their enumerated compound classes;
  only touched clusters re-run DPLL (``registry.reuse`` /
  ``registry.rebuilt`` tracer counters, one tick per cluster);
* :func:`merge_support` — grafts support verdicts of untouched ``Ψ_S``
  blocks from the previous version: the system is block-diagonal across
  connected components (constraint rows and acceptability edges never
  span components), so the maximal acceptable support of the whole is
  the union of per-block supports — components whose unknowns, block
  structure, and governing cardinalities are provably unchanged carry
  their old verdicts, witnesses, and pin logs over, and only the dirty
  components are re-solved (``restrict_to`` in
  :func:`~repro.linear.support.acceptable_support`);
* :class:`RevalidationReport` — the per-update accounting the registry
  and service surface (cluster/compound/support-block reuse counters).

Soundness of cluster reuse: the positive closure of a class never leaves
its cluster (criterion 1 of ``G_S`` connects every positive isa
occurrence), so the preselection rows, emptiness and disjointness facts,
and the DPLL enumeration of an untouched cluster are functions of its
member definitions alone — all unchanged.  Compound attributes depend
only on their two endpoints' member definitions; compound relations
additionally on their relation's definition, which is why a changed
relation forces full re-enumeration of its compound relations (but not
of any cluster).  The differential suite in ``tests/test_delta.py``
asserts verdict equality against cold rebuilds across randomized edits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Optional

from ..core.schema import Schema
from ..linear.support import PinEvent, SupportResult, acceptable_support
from ..linear.system import PsiSystem
from ..obs.tracer import NULL_TRACER, NullTracer, Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..expansion.expansion import Expansion
    from .artifact import CompiledSchema, SupportSnapshot
    from .pipeline import Pipeline

__all__ = [
    "SchemaDelta",
    "RevalidationReport",
    "seed_delta",
    "merge_support",
]


# ----------------------------------------------------------------------
# The structural diff
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SchemaDelta:
    """The structural difference between two schema versions.

    Definitions are compared structurally (``ClassDef`` / ``RelationDef``
    equality), per symbol; classes that are merely mentioned compare via
    their implicit trivial definition.  ``old`` and ``new`` ride along so
    consumers can resolve definitions from either side.
    """

    old: Schema
    new: Schema
    added_classes: frozenset[str]
    removed_classes: frozenset[str]
    changed_classes: frozenset[str]
    added_relations: frozenset[str]
    removed_relations: frozenset[str]
    changed_relations: frozenset[str]

    @classmethod
    def between(cls, old: Schema, new: Schema) -> "SchemaDelta":
        """Diff two schemas symbol by symbol."""
        old_classes, new_classes = old.class_symbols, new.class_symbols
        changed_classes = frozenset(
            name for name in old_classes & new_classes
            if old.definition(name) != new.definition(name))
        old_rels, new_rels = old.relation_symbols, new.relation_symbols
        changed_relations = frozenset(
            name for name in old_rels & new_rels
            if old.relation(name) != new.relation(name))
        return cls(
            old=old, new=new,
            added_classes=frozenset(new_classes - old_classes),
            removed_classes=frozenset(old_classes - new_classes),
            changed_classes=changed_classes,
            added_relations=frozenset(new_rels - old_rels),
            removed_relations=frozenset(old_rels - new_rels),
            changed_relations=changed_relations,
        )

    def is_empty(self) -> bool:
        return not (self.added_classes or self.removed_classes
                    or self.changed_classes or self.added_relations
                    or self.removed_relations or self.changed_relations)

    def touched_relations(self) -> frozenset[str]:
        """Relations whose compound-relation sets must be re-enumerated."""
        return (self.added_relations | self.removed_relations
                | self.changed_relations)

    def dirty_classes(self) -> frozenset[str]:
        """Classes whose cluster may not be reused.

        A class is dirty when its own definition changed (or appeared),
        or when a touched relation mentions it in a role formula or is
        the target of one of its participation specs — those edits can
        change the class's compound relations and, through the cluster
        graph's criterion 3, its cluster membership.  Clusters are then
        reused only when they match the old partition verbatim *and*
        contain no dirty class.
        """
        dirty = set(self.added_classes) | set(self.changed_classes)
        touched = self.touched_relations()
        for name in touched:
            for schema in (self.old, self.new):
                if schema.has_relation(name):
                    dirty.update(schema.relation(name).mentioned_classes())
        if touched:
            for schema in (self.old, self.new):
                for cdef in schema.class_definitions:
                    if any(spec.relation in touched
                           for spec in cdef.participates):
                        dirty.add(cdef.name)
        return frozenset(dirty)

    def summary(self) -> dict:
        """A small JSON-able rendering (service and CLI reports)."""
        return {
            "added_classes": sorted(self.added_classes),
            "removed_classes": sorted(self.removed_classes),
            "changed_classes": sorted(self.changed_classes),
            "added_relations": sorted(self.added_relations),
            "removed_relations": sorted(self.removed_relations),
            "changed_relations": sorted(self.changed_relations),
        }


# ----------------------------------------------------------------------
# The revalidation accounting
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RevalidationReport:
    """What one schema update cost and what it reused.

    ``mode`` is ``"delta"`` (diff-aware rebuild), ``"fresh"`` (cold
    rebuild — no usable previous artifact, a naive strategy, or a
    hierarchy-shaped schema whose closed form is cheaper), or
    ``"unchanged"`` (the new version fingerprints identically).
    """

    mode: str
    fingerprint_old: Optional[str]
    fingerprint_new: str
    clusters_total: int = 0
    clusters_reused: int = 0
    clusters_rebuilt: int = 0
    compounds_reused: int = 0
    compounds_fresh: int = 0
    support_blocks_reused: int = 0
    support_blocks_solved: int = 0
    duration_s: float = 0.0
    delta: Optional[dict] = field(default=None)

    def to_json(self) -> dict:
        payload = {
            "mode": self.mode,
            "fingerprint_old": self.fingerprint_old,
            "fingerprint_new": self.fingerprint_new,
            "clusters": {
                "total": self.clusters_total,
                "reused": self.clusters_reused,
                "rebuilt": self.clusters_rebuilt,
            },
            "compound_classes": {
                "reused": self.compounds_reused,
                "fresh": self.compounds_fresh,
            },
            "support_blocks": {
                "reused": self.support_blocks_reused,
                "solved": self.support_blocks_solved,
            },
            "duration_s": self.duration_s,
        }
        if self.delta is not None:
            payload["delta"] = self.delta
        return payload


# ----------------------------------------------------------------------
# Seeding a pipeline from (previous artifact, delta)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DeltaExpansionSeed:
    """What the expansion stage needs for a partial rebuild: the merged
    compound-class list, which of them were reused verbatim, the previous
    expansion to copy rows from, and the relations that must re-enumerate
    from scratch."""

    classes: tuple[frozenset, ...]
    reused: frozenset
    old: "Expansion"
    touched_relations: frozenset[str]


@dataclass(frozen=True)
class DeltaSupportSeed:
    """What the support stage needs to graft old verdicts: the previous
    system, its stored verdicts, and the compound classes whose clusters
    were reused (the untouched test for block reuse)."""

    prev_system: PsiSystem
    snapshot: "SupportSnapshot"
    reused_classes: frozenset


def seed_delta(pipeline: "Pipeline", prev: "CompiledSchema",
               delta: SchemaDelta) -> bool:
    """Seed ``pipeline`` (for ``delta.new``) with everything reusable from
    ``prev`` (the compiled previous version).  Returns False when the
    diff-aware path does not apply — the caller then builds cold:

    * a ``naive`` strategy enumerates globally, so there is no per-cluster
      reuse unit;
    * a schema the §4.4 closed form covers is answered faster by the
      closed form than by any reuse;
    * a previous artifact without a cluster partition has nothing to match
      against.
    """
    from ..expansion.enumerate import dpll_compound_classes
    from ..expansion.graph import clusters as compute_clusters
    from ..expansion.graph import hierarchy_compound_classes
    from ..expansion.tables import build_tables

    config = pipeline.config
    if config.strategy not in ("auto", "strategic") or prev.clusters is None:
        return False
    tracer = pipeline.tracer
    with tracer.span("pipeline.delta_seed"), \
            pipeline.timer.stage("delta_seed"):
        new_schema = pipeline.schema
        tables = build_tables(new_schema)
        if (config.strategy == "auto"
                and hierarchy_compound_classes(new_schema, tables)
                is not None):
            return False
        new_clusters = compute_clusters(new_schema, tables)
        dirty = delta.dirty_classes()

        old_index = {component: index
                     for index, component in enumerate(prev.clusters)}
        old_cluster_of = {name: index
                          for index, component in enumerate(prev.clusters)
                          for name in component}
        grouped: dict[int, list[frozenset]] = {}
        for members in prev.expansion.compound_classes:
            if members:
                grouped.setdefault(old_cluster_of[next(iter(members))],
                                   []).append(members)

        combined: list[frozenset] = [frozenset()]
        reused: list[frozenset] = []
        n_reused = n_rebuilt = n_fresh = 0
        for component in new_clusters:
            base = old_index.get(component)
            if base is not None and not (component & dirty):
                rows = grouped.get(base, [])
                combined.extend(rows)
                reused.extend(rows)
                n_reused += 1
                tracer.add("registry.reuse")
            else:
                fresh = [members for members in dpll_compound_classes(
                    new_schema, sorted(component), tables) if members]
                combined.extend(fresh)
                n_fresh += len(fresh)
                n_rebuilt += 1
                tracer.add("registry.rebuilt")

    pipeline._artifacts["tables"] = tables
    pipeline._clusters = new_clusters
    pipeline._hierarchy_effective = False
    pipeline._expansion_delta = DeltaExpansionSeed(
        classes=tuple(combined), reused=frozenset(reused),
        old=prev.expansion, touched_relations=delta.touched_relations())
    if prev.support is not None:
        pipeline._support_seed = DeltaSupportSeed(
            prev_system=prev.system, snapshot=prev.support,
            reused_classes=frozenset(reused))
    pipeline.delta_stats.update({
        "mode": "delta",
        "clusters_total": len(new_clusters),
        "clusters_reused": n_reused,
        "clusters_rebuilt": n_rebuilt,
        "compounds_reused": len(reused),
        "compounds_fresh": n_fresh,
    })
    return True


# ----------------------------------------------------------------------
# Support-block reuse
# ----------------------------------------------------------------------
def _components(system: PsiSystem) -> list[list[int]]:
    """Connected components of ``Ψ_S``: unknowns coupled by a constraint
    row or by an acceptability (endpoint) edge.  The system is
    block-diagonal across these — the structural fact block reuse rests
    on."""
    n = system.n_unknowns()
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for constraint in system.constraints:
        coefficients = constraint.coefficients
        if coefficients:
            first = coefficients[0][0]
            for index, _ in coefficients[1:]:
                union(first, index)
    for index in range(n):
        for endpoint in system.endpoints_of(index):
            union(index, endpoint)

    groups: dict[int, list[int]] = {}
    for index in range(n):
        groups.setdefault(find(index), []).append(index)
    return list(groups.values())


def merge_support(system: PsiSystem, seed: DeltaSupportSeed, *,
                  backend, use_propagation: bool, merge_columns: bool,
                  tracer: "Tracer | NullTracer" = NULL_TRACER,
                  stats: Optional[dict] = None) -> SupportResult:
    """The support of ``system``, reusing verdicts of untouched blocks.

    A connected component of the new system is **reusable** when every
    compound-class unknown in it belongs to a reused cluster, every
    unknown existed in the previous system, and the component's unknown
    set matches its previous component exactly — then its constraint rows
    are provably identical (cardinality entries and summand sets are
    functions of unchanged definitions), so the old verdicts, witness
    values, and pin log carry over.  All remaining components are solved
    together through :func:`~repro.linear.support.acceptable_support`
    restricted to their indices.
    """
    snapshot = seed.snapshot
    reused_classes = seed.reused_classes
    prev_index = {unknown: i
                  for i, unknown in enumerate(seed.prev_system.unknowns)}
    old_comp_of: dict[object, int] = {}
    old_comp_sets: list[frozenset] = []
    prev_unknowns = seed.prev_system.unknowns
    for cid, component in enumerate(_components(seed.prev_system)):
        members = frozenset(prev_unknowns[i] for i in component)
        old_comp_sets.append(members)
        for i in component:
            old_comp_of[prev_unknowns[i]] = cid

    unknowns = system.unknowns
    active: list[int] = []
    reused_indices: list[int] = []
    blocks_reused = blocks_solved = 0
    for component in _components(system):
        reusable = True
        for i in component:
            unknown = unknowns[i]
            if unknown not in prev_index:
                reusable = False
                break
            if isinstance(unknown, frozenset) and unknown not in reused_classes:
                reusable = False
                break
        if reusable:
            members = frozenset(unknowns[i] for i in component)
            old_cid = old_comp_of[unknowns[component[0]]]
            reusable = old_comp_sets[old_cid] == members
        if reusable:
            blocks_reused += 1
            reused_indices.extend(component)
        else:
            blocks_solved += 1
            active.extend(component)

    if active:
        partial = acceptable_support(
            system, backend, use_propagation=use_propagation,
            merge_columns=merge_columns, restrict_to=sorted(active),
            tracer=tracer)
        support = set(partial.support)
        values = dict(partial.solution)
        pin_log = list(partial.pin_log)
        rounds = partial.rounds
        backend_used = partial.backend_used
    else:
        support, values, pin_log = set(), {}, []
        rounds = 0
        backend_used = snapshot.backend_used

    old_values = dict(snapshot.values)
    pins_by_unknown: dict[object, list] = {}
    for unknown, phase, reason, round_number in snapshot.pins:
        pins_by_unknown.setdefault(unknown, []).append(
            (phase, reason, round_number))
    for i in reused_indices:
        unknown = unknowns[i]
        if unknown in snapshot.supported:
            support.add(i)
        values[i] = old_values.get(unknown, Fraction(0))
        for phase, reason, round_number in pins_by_unknown.get(unknown, ()):
            pin_log.append(PinEvent(i, phase, reason, round_number))

    tracer.add("registry.support_blocks_reused", blocks_reused)
    tracer.add("registry.support_blocks_solved", blocks_solved)
    if stats is not None:
        stats["support_blocks_reused"] = blocks_reused
        stats["support_blocks_solved"] = blocks_solved
    full_solution = {i: values.get(i, Fraction(0))
                     for i in range(system.n_unknowns())}
    return SupportResult(system, frozenset(support), full_solution, rounds,
                         backend_used, tuple(pin_log))
