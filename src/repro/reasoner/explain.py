"""Explanations for unsatisfiable classes.

Class satisfiability has two failure modes, mirroring the paper's two
phases, and a useful schema validator should say *which* one hit and *why*:

* **Phase 1** — no consistent compound class contains the class at all: its
  isa constraints (possibly through inherited unit clauses, or an empty
  merged cardinality interval) are contradictory in isolation.
* **Phase 2** — consistent compound classes exist, but the system of linear
  disequations pins all of them to zero: a *global counting conflict* over
  finite models, e.g. ``|links| = |C|`` and ``|links| = 3·|C|``
  simultaneously.

:func:`explain_unsatisfiability` reconstructs the story from the
preselection tables and the pin log the support computation records.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ReasoningError
from .satisfiability import Reasoner

__all__ = ["Explanation", "explain_unsatisfiability"]


@dataclass(frozen=True)
class Explanation:
    """Why a class can never be populated.

    ``phase`` is 1 (no consistent compound class) or 2 (linear phase);
    ``headline`` a one-sentence summary; ``details`` per-compound or
    per-derivation evidence lines.
    """

    class_name: str
    phase: int
    headline: str
    details: tuple[str, ...]

    def __str__(self) -> str:
        lines = [f"class {self.class_name} is unsatisfiable "
                 f"(phase {self.phase}): {self.headline}"]
        lines.extend(f"  - {detail}" for detail in self.details)
        return "\n".join(lines)


def explain_unsatisfiability(reasoner: Reasoner, class_name: str,
                             max_details: int = 6) -> Explanation:
    """Diagnose why ``class_name`` is unsatisfiable.

    Raises :class:`~repro.core.errors.ReasoningError` when the class is in
    fact satisfiable (nothing to explain).
    """
    if reasoner.is_satisfiable(class_name):
        raise ReasoningError(
            f"class {class_name!r} is satisfiable; nothing to explain")

    expansion = reasoner.expansion
    containing = [members for members in expansion.compound_classes
                  if class_name in members]

    if not containing:
        return _explain_phase1(reasoner, class_name, max_details)
    return _explain_phase2(reasoner, class_name, containing, max_details)


def _explain_phase1(reasoner: Reasoner, class_name: str,
                    max_details: int) -> Explanation:
    tables = reasoner.tables  # shared with the enumeration pipeline
    details: list[str] = []
    derivation = tables.why_empty(class_name)
    if derivation is not None:
        details.append(derivation)
    else:
        isa = reasoner.schema.definition(class_name).isa
        details.append(
            f"no truth assignment over the schema's classes satisfies the "
            f"isa constraints once {class_name} is made true "
            f"(its own isa part: {isa})")
    required = sorted(tables.superclasses(class_name) - {class_name})
    if required:
        details.append(
            f"membership in {class_name} forces membership in: "
            + ", ".join(required))
    return Explanation(
        class_name, 1,
        "no consistent compound class contains it — its isa constraints "
        "are contradictory",
        tuple(details[:max_details]))


def _explain_phase2(reasoner: Reasoner, class_name: str,
                    containing: list, max_details: int) -> Explanation:
    support = reasoner.support
    details: list[str] = []
    reasons_seen: set[str] = set()
    for members in containing:
        for event in support.pin_events_for(members):
            label = "{" + ", ".join(sorted(members)) + "}"
            line = f"compound class {label}: {event.reason} ({event.phase})"
            if event.reason not in reasons_seen:
                reasons_seen.add(event.reason)
                details.append(line)
        if len(details) >= max_details:
            break
    if not details:
        details.append(
            "every compound class containing it was pinned during the "
            "linear phase")
    linear = any("counting conflict" in line or "(linear)" in line
                 for line in details)
    headline = (
        "its compound classes are consistent, but the linear phase shows no "
        "finite database state can populate them"
        if linear else
        "its compound classes are all refuted by cardinality propagation")
    return Explanation(class_name, 2, headline, tuple(details[:max_details]))
