"""The CAR reasoner: satisfiability, logical implication, transformations."""

from .evolution import EvolutionReport, compare_schemas
from .explain import Explanation, explain_unsatisfiability
from .implication import (
    Classification,
    classify,
    implied_attribute_bounds,
    implied_attribute_filler,
    implied_disjoint,
    implied_equivalence,
    implied_participation_bounds,
    implied_role_constraint,
    implied_subsumption,
    implies_class_definition,
    implies_isa,
)
from .placement import Placement, place_formula
from .satisfiability import CoherenceReport, Reasoner
from .transform import ReificationResult, ReifiedRelation, reify_nonbinary_relations

__all__ = [
    "EvolutionReport", "compare_schemas",
    "Explanation", "explain_unsatisfiability",
    "Classification", "classify", "implied_attribute_bounds",
    "implied_attribute_filler", "implied_disjoint", "implied_equivalence",
    "implied_participation_bounds", "implied_role_constraint",
    "implied_subsumption", "implies_class_definition", "implies_isa",
    "Placement", "place_formula",
    "CoherenceReport", "Reasoner",
    "ReificationResult", "ReifiedRelation", "reify_nonbinary_relations",
]
