"""Logical implication and schema classification.

A schema ``S`` logically implies a property when every model of ``S``
satisfies it (Section 2.3).  All the implications below reduce to
membership tests over the supported compound classes: an object of a model
lies in exactly one compound class, the supported compound classes are
exactly the ones some model populates, and — by closure of acceptable
solutions under addition — one model populates all of them at once.

* ``S ⊨ C isa F``  ⇔  every supported compound class containing ``C``
  realizes ``F``;
* ``S ⊨ C1, C2 disjoint``  ⇔  no supported compound class contains both;
* implied attribute-cardinality bounds are read off ``Natt`` restricted to
  the supported compound classes.

:func:`classify` computes the full implied subsumption preorder — the
inheritance-computation application the paper names in Section 2.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.cardinality import Card, INFINITY
from ..core.errors import ReasoningError
from ..core.formulas import FormulaLike, Lit, as_formula
from ..core.schema import AttrRef
from .satisfiability import Reasoner

__all__ = ["implies_isa", "implied_disjoint", "implied_subsumption",
           "implied_equivalence", "implied_attribute_bounds",
           "implied_attribute_filler", "implied_participation_bounds",
           "implied_role_constraint", "implies_class_definition",
           "Classification", "classify"]


def _check_class(reasoner: Reasoner, name: str) -> None:
    if name not in reasoner.schema.class_symbols:
        raise ReasoningError(f"class {name!r} does not occur in the schema")


def implies_isa(reasoner: Reasoner, class_name: str,
                formula: FormulaLike) -> bool:
    """``S ⊨ class_name isa formula``.

    Decided clause-wise: the formula is implied iff for each clause ``γ``
    the literal conjunction ``class_name ∧ ¬γ`` is unsatisfiable — a
    formula-satisfiability query, which handles cross-cluster formulas
    correctly (see :meth:`Reasoner.is_formula_satisfiable`).
    """
    from ..core.formulas import Clause, Formula

    _check_class(reasoner, class_name)
    formula = as_formula(formula)
    unknown = formula.classes() - reasoner.schema.class_symbols
    if unknown:
        raise ReasoningError(
            f"formula mentions classes outside the schema: {sorted(unknown)}")
    for clause in formula:
        units = [Clause((Lit(class_name),))]
        units.extend(Clause((Lit(lit.name, not lit.positive),))
                     for lit in clause)
        if reasoner.is_formula_satisfiable(Formula(tuple(units))):
            return False
    return True


def implied_subsumption(reasoner: Reasoner, sub: str, sup: str) -> bool:
    """``S ⊨ sub isa sup`` for plain class symbols.

    Note that an unsatisfiable ``sub`` is subsumed by everything.
    """
    return implies_isa(reasoner, sub, Lit(sup))


def implied_equivalence(reasoner: Reasoner, c1: str, c2: str) -> bool:
    """Mutual subsumption: the two classes coincide in every model."""
    return (implied_subsumption(reasoner, c1, c2)
            and implied_subsumption(reasoner, c2, c1))


def implied_disjoint(reasoner: Reasoner, c1: str, c2: str) -> bool:
    """``S ⊨ c1 ∧ c2`` has no instance in any model."""
    _check_class(reasoner, c1)
    _check_class(reasoner, c2)
    return not reasoner.is_formula_satisfiable(Lit(c1) & Lit(c2))


def implied_attribute_bounds(reasoner: Reasoner, class_name: str,
                             ref: AttrRef) -> Optional[Card]:
    """The tightest cardinality interval ``S`` implies for the number of
    ``ref``-links of an instance of ``class_name``.

    Derived from ``Natt`` over supported compound classes: an instance in
    compound class ``C̄`` may carry any link count allowed by
    ``C̄ ⇒ ref : (u, v)`` — capped at 0 when no consistent supported partner
    exists — so the implied bounds are the hull over the compound classes
    ``class_name`` can inhabit.  Returns None when ``class_name`` is
    unsatisfiable (every bound holds vacuously).
    """
    _check_class(reasoner, class_name)
    expansion = reasoner.expansion
    supported = reasoner.supported_compound_classes()
    hull: Optional[Card] = None
    for members in supported:
        if class_name not in members:
            continue
        card = expansion.natt.get((members, ref), Card(0, INFINITY))
        if not _has_supported_partner(reasoner, members, ref, supported):
            card = Card(0, 0)
        hull = card if hull is None else hull.widen(card)
    return hull


def _has_supported_partner(reasoner: Reasoner, members: frozenset,
                           ref: AttrRef, supported: list[frozenset]) -> bool:
    """Can an instance of compound class ``members`` carry a ``ref``-link in
    some model?

    Materialized compound attributes (those a binding ``Natt`` entry made
    part of ``Ψ_S``) must themselves be supported; non-materialized ones are
    unconstrained, so supported endpoints suffice — their consistency is
    checked on the fly.
    """
    from ..expansion.compound import (
        CompoundAttribute,
        is_consistent_compound_attribute,
    )

    expansion = reasoner.expansion
    if ref.inverse:
        materialized = expansion.attributes_with_right(ref.name, members)
        seen = {c.left for c in materialized}
    else:
        materialized = expansion.attributes_with_left(ref.name, members)
        seen = {c.right for c in materialized}
    if any(reasoner.support.is_supported(c) for c in materialized):
        return True
    for partner in supported:
        if partner in seen:
            continue  # materialized and found unsupported above
        if ref.inverse:
            candidate = CompoundAttribute(ref.name, partner, members)
        else:
            candidate = CompoundAttribute(ref.name, members, partner)
        if is_consistent_compound_attribute(reasoner.schema, candidate,
                                            endpoints_consistent=True):
            return True
    return False


def implied_attribute_filler(reasoner: Reasoner, class_name: str,
                             ref: AttrRef, formula) -> bool:
    """``S ⊨`` every ``ref``-filler of an instance of ``class_name`` is in
    ``formula``.

    Decided clause-wise: a clause ``γ`` fails iff some model contains an
    instance of ``class_name`` with a ``ref``-link to an object satisfying
    ``¬γ`` (the conjunction of the negated literals).  When the touched
    classes sit in one cluster, the supported compound-attribute pairs
    answer directly; otherwise the query is decided on an augmented schema
    with a fresh subclass of ``class_name`` that *forces* such a link —
    reducing to plain class satisfiability, which is always correct.
    """
    from ..core.formulas import Clause, Formula, as_formula

    _check_class(reasoner, class_name)
    formula = as_formula(formula)
    unknown = formula.classes() - reasoner.schema.class_symbols
    if unknown:
        raise ReasoningError(
            f"formula mentions classes outside the schema: {sorted(unknown)}")
    for clause in formula:
        negated = Formula(tuple(
            Clause((Lit(lit.name, not lit.positive),)) for lit in clause))
        touched = clause.classes() | {class_name}
        if reasoner.enumeration_complete_for(touched):
            if _enumerated_bad_partner(reasoner, class_name, ref, negated):
                return False
        elif _augmented_bad_link(reasoner, class_name, ref, negated):
            return False
    return True


def _enumerated_bad_partner(reasoner: Reasoner, class_name: str,
                            ref: AttrRef, negated) -> bool:
    """Is there a populatable pair whose filler side satisfies ``negated``?"""
    from ..expansion.compound import (
        CompoundAttribute,
        is_consistent_compound_attribute,
    )

    expansion = reasoner.expansion
    supported = reasoner.supported_compound_classes()
    materialized = set(expansion.compound_attributes.get(ref.name, ()))
    for members in supported:
        if class_name not in members:
            continue
        for partner in supported:
            if not negated.satisfied_by(partner):
                continue
            if ref.inverse:
                candidate = CompoundAttribute(ref.name, partner, members)
            else:
                candidate = CompoundAttribute(ref.name, members, partner)
            if candidate in materialized:
                if reasoner.support.is_supported(candidate):
                    return True
            elif is_consistent_compound_attribute(
                    reasoner.schema, candidate, endpoints_consistent=True):
                return True
    return False


def _augmented_bad_link(reasoner: Reasoner, class_name: str, ref: AttrRef,
                        negated) -> bool:
    """Cross-cluster case: can an instance of ``class_name`` carry a
    ``ref``-link whose filler satisfies ``negated``?

    A fresh subclass forcing at least one such link is satisfiable exactly
    when some model realizes the bad link (per-pair link distribution is
    free, so one bad link implies an all-bad-links object at some scale).
    """
    from ..core.cardinality import Card
    from ..core.schema import AttributeSpec, ClassDef

    name = reasoner.fresh_class_name("QueryLink")
    probe = ClassDef(
        name, isa=Lit(class_name),
        attributes=[AttributeSpec(ref, Card(1, None), negated)])
    return reasoner.augmented_with(probe).is_satisfiable(name)


def implies_class_definition(reasoner: Reasoner, cdef) -> bool:
    """``S ⊨ δ`` for a whole class definition ``δ`` (Section 2.3).

    A definition is implied when every model of the schema satisfies it:
    the isa part, every attribute spec (filler typing *and* cardinality
    interval), and every participation spec.
    """
    from ..core.schema import ClassDef

    if not isinstance(cdef, ClassDef):
        raise ReasoningError(f"expected a ClassDef, got {cdef!r}")
    name = cdef.name
    _check_class(reasoner, name)
    if not reasoner.is_satisfiable(name):
        return True  # vacuously: the class has no instances in any model
    if not implies_isa(reasoner, name, cdef.isa):
        return False
    for spec in cdef.attributes:
        bounds = implied_attribute_bounds(reasoner, name, spec.ref)
        if bounds is None or not bounds.refines(spec.card):
            return False
        if not implied_attribute_filler(reasoner, name, spec.ref, spec.filler):
            return False
    for spec in cdef.participates:
        bounds = implied_participation_bounds(
            reasoner, name, spec.relation, spec.role)
        if bounds is None or not bounds.refines(spec.card):
            return False
    return True


def _possible_compound_relations(reasoner: Reasoner, relation: str):
    """Compound relations that some model can make nonempty.

    Materialized ones (part of ``Ψ_S``) must be supported; non-materialized
    ones are unconstrained, so consistency over supported endpoint compound
    classes suffices.  Enumerates ``|supported|^arity`` candidates — fine
    for API use on moderate schemas.
    """
    from itertools import product as _product

    from ..expansion.compound import (
        CompoundRelation,
        is_consistent_compound_relation,
    )

    expansion = reasoner.expansion
    rdef = reasoner.schema.relation(relation)
    materialized = set(expansion.compound_relations.get(relation, ()))
    supported = reasoner.supported_compound_classes()
    for combo in _product(supported, repeat=rdef.arity):
        candidate = CompoundRelation(relation, dict(zip(rdef.roles, combo)))
        if candidate in materialized:
            if reasoner.support.is_supported(candidate):
                yield candidate
        elif is_consistent_compound_relation(reasoner.schema, candidate,
                                             endpoints_consistent=True):
            yield candidate


def implied_participation_bounds(reasoner: Reasoner, class_name: str,
                                 relation: str, role: str) -> Optional[Card]:
    """The tightest interval ``S`` implies for the number of tuples of
    ``relation`` an instance of ``class_name`` occurs in at ``role``.

    The analogue of :func:`implied_attribute_bounds` for relation
    participation; None when ``class_name`` is unsatisfiable.
    """
    _check_class(reasoner, class_name)
    if role not in reasoner.schema.relation(relation).roles:
        raise ReasoningError(
            f"relation {relation} has no role {role!r}")
    expansion = reasoner.expansion
    possible = list(_possible_compound_relations(reasoner, relation))
    hull: Optional[Card] = None
    for members in reasoner.supported_compound_classes():
        if class_name not in members:
            continue
        card = expansion.nrel.get((members, relation, role),
                                  Card(0, INFINITY))
        if not any(candidate[role] == members for candidate in possible):
            card = Card(0, 0)
        hull = card if hull is None else hull.widen(card)
    return hull


def implied_role_constraint(reasoner: Reasoner, relation: str, role: str,
                            formula) -> bool:
    """``S ⊨`` every tuple of ``relation`` has its ``role`` component in
    ``formula``.

    Clause-wise like :func:`implied_attribute_filler`: clause ``γ`` fails
    iff some model has a tuple whose ``role`` component satisfies ``¬γ``.
    The enumeration over populatable compound relations decides it when the
    touched classes share a cluster; otherwise a fresh probe class
    satisfying ``¬γ`` and forced to participate in ``relation[role]``
    reduces the question to class satisfiability.
    """
    from ..core.cardinality import Card
    from ..core.formulas import Clause, Formula, as_formula
    from ..core.schema import ClassDef, ParticipationSpec

    formula = as_formula(formula)
    unknown = formula.classes() - reasoner.schema.class_symbols
    if unknown:
        raise ReasoningError(
            f"formula mentions classes outside the schema: {sorted(unknown)}")
    rdef = reasoner.schema.relation(relation)
    if role not in rdef.roles:
        raise ReasoningError(f"relation {relation} has no role {role!r}")

    possible = None
    for clause in formula:
        negated = Formula(tuple(
            Clause((Lit(lit.name, not lit.positive),)) for lit in clause))
        touched = clause.classes() | rdef.mentioned_classes()
        if reasoner.enumeration_complete_for(touched):
            if possible is None:
                possible = list(_possible_compound_relations(reasoner, relation))
            if any(negated.satisfied_by(candidate[role])
                   for candidate in possible):
                return False
        else:
            name = reasoner.fresh_class_name("QueryRole")
            probe = ClassDef(
                name, isa=negated,
                participates=[ParticipationSpec(relation, role, Card(1, None))])
            if reasoner.augmented_with(probe).is_satisfiable(name):
                return False
    return True


@dataclass(frozen=True)
class Classification:
    """The implied subsumption structure of a schema.

    ``subsumptions`` holds every implied pair ``(sub, sup)`` with
    ``sub ≠ sup`` over satisfiable classes; ``equivalence_groups`` the
    induced classes of mutually subsuming names; ``unsatisfiable`` the names
    with no possible instance.
    """

    subsumptions: frozenset[tuple[str, str]]
    equivalence_groups: tuple[tuple[str, ...], ...]
    unsatisfiable: tuple[str, ...]

    def parents(self, name: str) -> list[str]:
        """Direct (non-transitive) implied superclasses of ``name``."""
        ups = {sup for sub, sup in self.subsumptions if sub == name}
        direct = set(ups)
        for sup in ups:
            direct -= {higher for lower, higher in self.subsumptions
                       if lower == sup and higher in direct and higher != sup}
        return sorted(direct)

    def __str__(self) -> str:
        lines = [f"{len(self.subsumptions)} implied subsumptions"]
        for sub, sup in sorted(self.subsumptions):
            lines.append(f"  {sub} isa {sup}")
        if self.unsatisfiable:
            lines.append("unsatisfiable: " + ", ".join(self.unsatisfiable))
        return "\n".join(lines)


def classify(reasoner: Reasoner) -> Classification:
    """Compute all implied subsumptions between class symbols.

    Complexity: one pass over supported compound classes per class pair —
    the expensive support computation is shared across all queries.
    """
    names = sorted(reasoner.schema.class_symbols)
    supported = reasoner.supported_compound_classes()
    containing = {name: [m for m in supported if name in m] for name in names}
    unsatisfiable = tuple(name for name in names if not containing[name])

    subsumptions: set[tuple[str, str]] = set()
    for sub in names:
        if not containing[sub]:
            continue  # unsatisfiable classes subsume vacuously; skip noise
        for sup in names:
            if sub == sup:
                continue
            if all(sup in members for members in containing[sub]):
                subsumptions.add((sub, sup))

    groups: list[tuple[str, ...]] = []
    seen: set[str] = set()
    for name in names:
        if name in seen or not containing[name]:
            continue
        group = [name] + [other for other in names
                          if other != name
                          and (name, other) in subsumptions
                          and (other, name) in subsumptions]
        if len(group) > 1:
            groups.append(tuple(sorted(group)))
            seen.update(group)
    return Classification(frozenset(subsumptions), tuple(groups), unsatisfiable)
