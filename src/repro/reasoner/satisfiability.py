"""The CAR reasoner: class satisfiability and friends (Section 3).

:class:`Reasoner` is a thin query façade over the engine layer's
:class:`~repro.engine.pipeline.Pipeline`, which stages the full two-phase
decision procedure:

* **Phase 1** — build the expansion ``S̄`` (compound classes, attributes,
  relations, ``Natt``/``Nrel``) with a configurable enumeration strategy;
* **Phase 2** — derive the homogeneous disequation system ``Ψ_S`` and
  compute its maximal acceptable support.

All queries are then support-membership tests, so one reasoner instance
answers any number of satisfiability/implication questions about its schema
at no extra solving cost.  Pipeline knobs travel in one
:class:`~repro.engine.config.EngineConfig`; the legacy keyword arguments
(``strategy``, ``size_limit``, ``incremental_augmented``) keep working and
are folded into a config on construction.
"""

from __future__ import annotations

import warnings
from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Union

from ..core.errors import ReasoningError
from ..core.formulas import Formula, FormulaLike, as_formula
from ..core.schema import Schema
from ..engine.config import EngineConfig
from ..engine.pipeline import Pipeline
from ..engine.stats import PipelineStats
from ..expansion.expansion import Expansion
from ..expansion.tables import SchemaTables
from ..linear.support import SupportResult
from ..linear.system import PsiSystem
from ..obs.tracer import NullTracer, Tracer

__all__ = ["Reasoner", "CoherenceReport"]


@dataclass(frozen=True)
class CoherenceReport:
    """Outcome of whole-schema validation.

    A schema is *coherent* when every defined class is satisfiable — the
    paper's schema-validation application of class satisfiability.
    """

    satisfiable: tuple[str, ...]
    unsatisfiable: tuple[str, ...]

    @property
    def is_coherent(self) -> bool:
        return not self.unsatisfiable

    def __str__(self) -> str:
        if self.is_coherent:
            return f"coherent: all {len(self.satisfiable)} classes satisfiable"
        return ("incoherent: unsatisfiable classes "
                + ", ".join(self.unsatisfiable))


class Reasoner:
    """Sound and complete reasoner for a CAR schema.

    Parameters
    ----------
    schema:
        The schema to reason about.
    config:
        A complete :class:`~repro.engine.config.EngineConfig` — the one
        configuration route.  When given it takes precedence over the
        deprecated loose keyword arguments below.
    tracer:
        Optional :class:`~repro.obs.tracer.Tracer` this reasoner's
        pipeline (and any augmented pipelines it seeds) records into;
        defaults to the config's ``trace`` setting.
    strategy / size_limit / incremental_augmented:
        **Deprecated** loose knobs, folded into an ``EngineConfig`` on
        construction.  Passing any of them emits a
        :class:`DeprecationWarning`; construct an
        :class:`~repro.engine.config.EngineConfig` instead.
    """

    #: Bound on the memoized formula-verdict cache (LRU eviction beyond it).
    #: The default of ``EngineConfig.augmented_cache_limit``; kept as a
    #: class attribute for backward compatibility (subclasses may override).
    AUGMENTED_CACHE_LIMIT = 256

    def __init__(self, schema: Schema, strategy: Optional[str] = None,
                 size_limit: Optional[int] = None, *,
                 incremental_augmented: Optional[bool] = None,
                 config: Optional[EngineConfig] = None,
                 tracer: Optional[Union[Tracer, NullTracer]] = None):
        legacy = [name for name, value in
                  (("strategy", strategy), ("size_limit", size_limit),
                   ("incremental_augmented", incremental_augmented))
                  if value is not None]
        if legacy:
            warnings.warn(
                f"Reasoner({', '.join(legacy)}=...) is deprecated; pass "
                f"config=EngineConfig({', '.join(legacy)}=...) instead",
                DeprecationWarning, stacklevel=2)
        if config is None:
            config = EngineConfig(
                strategy=strategy if strategy is not None else "auto",
                size_limit=size_limit,
                incremental_augmented=(incremental_augmented
                                       if incremental_augmented is not None
                                       else True),
                augmented_cache_limit=self.AUGMENTED_CACHE_LIMIT)
        self._config = config
        self._pipeline = Pipeline(schema, config, tracer=tracer)
        self._augmented_cache: OrderedDict[Formula, bool] = OrderedDict()
        self._min_witness: Optional[dict] = None

    @classmethod
    def from_pipeline(cls, pipeline: Pipeline) -> "Reasoner":
        """A reasoner wrapped around an existing pipeline.

        The construction route of the precompiled-artifact path: a
        pipeline rehydrated by :meth:`Pipeline.from_artifact
        <repro.engine.pipeline.Pipeline.from_artifact>` already carries
        its Phase-1/Phase-2 stage products, so the reasoner skips straight
        to support solving on first query.  Verdicts are identical to a
        freshly built reasoner (the differential suite asserts this).
        """
        reasoner = cls.__new__(cls)
        reasoner._config = pipeline.config
        reasoner._pipeline = pipeline
        reasoner._augmented_cache = OrderedDict()
        reasoner._min_witness = None
        return reasoner

    # ------------------------------------------------------------------
    # The engine pipeline and its artifacts
    # ------------------------------------------------------------------
    @property
    def config(self) -> EngineConfig:
        """The engine configuration this reasoner runs under."""
        return self._config

    @property
    def pipeline(self) -> Pipeline:
        """The staged pipeline (tables → expansion → Ψ_S → support)."""
        return self._pipeline

    @property
    def tracer(self) -> Union[Tracer, NullTracer]:
        """The event/metric bus this reasoner records into
        (:data:`~repro.obs.tracer.NULL_TRACER` when tracing is off)."""
        return self._pipeline.tracer

    @property
    def schema(self) -> Schema:
        return self._pipeline.schema

    @property
    def tables(self) -> SchemaTables:
        """The preselection tables of the schema, built once and shared by
        every pipeline stage (enumeration, clusters, explanations)."""
        return self._pipeline.tables

    @property
    def expansion(self) -> Expansion:
        return self._pipeline.expansion

    @property
    def system(self) -> PsiSystem:
        return self._pipeline.system

    @property
    def support(self) -> SupportResult:
        return self._pipeline.support

    @property
    def _schema(self) -> Schema:
        # Backward-compatible alias (pre-engine attribute name).
        return self._pipeline.schema

    @property
    def _precomputed_classes(self) -> Optional[tuple]:
        # Exposed for the equivalence suite: non-None exactly when this
        # reasoner was seeded by the incremental augmented-query path.
        return self._pipeline._precomputed_classes

    def timings(self) -> dict[str, float]:
        """Accumulated wall-clock seconds per pipeline stage (``tables``,
        ``expansion``, ``system``, ``support``, ``augmented_query``, …)."""
        return self._pipeline.timer.readings()

    def supported_compound_classes(self) -> list[frozenset]:
        """Compound classes that are nonempty in some model (all of them
        simultaneously, by closure of acceptable solutions under addition)."""
        return self.support.supported_compound_classes()

    # ------------------------------------------------------------------
    # Satisfiability queries
    # ------------------------------------------------------------------
    def is_satisfiable(self, class_name: str) -> bool:
        """Class satisfiability (the paper's core decision problem):
        does some model of the schema give ``class_name`` an instance?"""
        if class_name not in self.schema.class_symbols:
            raise ReasoningError(
                f"class {class_name!r} does not occur in the schema")
        return any(class_name in members
                   for members in self.supported_compound_classes())

    def is_formula_satisfiable(self, formula: FormulaLike) -> bool:
        """Is there a model with an object satisfying ``formula``?

        Only class symbols of the schema may occur in the formula; this is
        the generalization that logical implication reduces to.

        Completeness across clusters: the strategic expansion only holds
        compound classes within one cluster of ``G_S`` — sound for class
        satisfiability (Theorem 4.6) but *incomplete* for formulas whose
        classes span clusters (an object may belong to classes of several
        clusters in a real model).  A positive answer from the supported
        compound classes is always sound; a negative one is final only when
        the enumeration was complete for this formula.  Otherwise the query
        is decided on an *augmented* schema with a fresh class whose isa is
        the formula — its positive mentions merge the touched clusters, so
        plain class satisfiability (always correct) gives the answer.
        """
        formula = as_formula(formula)
        unknown = formula.classes() - self.schema.class_symbols
        if unknown:
            raise ReasoningError(
                f"formula mentions classes outside the schema: {sorted(unknown)}")
        if any(formula.satisfied_by(members)
               for members in self.supported_compound_classes()):
            return True
        if self.enumeration_complete_for(formula.classes()):
            return False
        return self._augmented_satisfiable(formula)

    # ------------------------------------------------------------------
    # Cross-cluster completeness machinery
    # ------------------------------------------------------------------
    def enumeration_complete_for(self, class_names) -> bool:
        """Is the compound-class enumeration complete for queries touching
        exactly ``class_names``?

        True for the naive strategy (all subsets), for genuine hierarchies
        (incomparable classes are provably disjoint), and whenever the
        touched classes sit inside a single cluster of ``G_S``.
        """
        if self._config.strategy == "naive":
            return True
        if self._pipeline.is_hierarchy():
            return True
        clusters = self._pipeline.cluster_of()
        touched = {clusters[name] for name in class_names if name in clusters}
        return len(touched) <= 1

    def clusters(self) -> list[frozenset]:
        """The clusters of ``G_S`` (Theorem 4.6), computed once over the
        shared preselection tables and cached."""
        return self._pipeline.clusters()

    def fresh_class_name(self, base: str = "Query") -> str:
        """A class symbol not clashing with any symbol of the schema."""
        taken = (set(self.schema.class_symbols)
                 | set(self.schema.attribute_symbols)
                 | set(self.schema.relation_symbols))
        candidate = f"__{base}"
        counter = 0
        while candidate in taken:
            counter += 1
            candidate = f"__{base}{counter}"
        return candidate

    def augmented_with(self, cdef) -> "Reasoner":
        """A reasoner over this schema plus one query class definition.

        When this reasoner enumerated strategically and has its pipeline
        built, the augmented reasoner's pipeline is *seeded incrementally*:
        preselection tables are extended by one row instead of rebuilt, and
        compound classes of every cluster the query class does not touch are
        reused verbatim — only the merged cluster is re-enumerated.  The
        seeding is an optimization only; verdicts are identical to a cold
        rebuild (the equivalence suite asserts this).
        """
        augmented = Reasoner(self.schema.with_class(cdef),
                             config=self._config,
                             tracer=self._pipeline.tracer)
        if self._pipeline.can_seed_augmented(cdef):
            self._pipeline.seed_augmented(augmented._pipeline, cdef)
        return augmented

    def _augmented_satisfiable(self, formula: Formula) -> bool:
        from ..core.schema import ClassDef

        tracer = self._pipeline.tracer
        cached = self._augmented_cache.get(formula)
        if cached is not None:
            tracer.add("reasoner.verdict_cache_hits")
            self._augmented_cache.move_to_end(formula)
            return cached
        tracer.add("reasoner.verdict_cache_misses")
        name = self.fresh_class_name()
        with tracer.span("pipeline.augmented_query"), \
                self._pipeline.timer.stage("augmented_query"):
            verdict = self.augmented_with(
                ClassDef(name, isa=formula)).is_satisfiable(name)
        self._augmented_cache[formula] = verdict
        if len(self._augmented_cache) > self._config.augmented_cache_limit:
            self._augmented_cache.popitem(last=False)
        return verdict

    def satisfiable_classes(self) -> list[str]:
        return [name for name in sorted(self.schema.class_symbols)
                if self.is_satisfiable(name)]

    def unsatisfiable_classes(self) -> list[str]:
        return [name for name in sorted(self.schema.class_symbols)
                if not self.is_satisfiable(name)]

    def check_coherence(self) -> CoherenceReport:
        """Schema validation: partition the *defined* classes by
        satisfiability."""
        satisfiable: list[str] = []
        unsatisfiable: list[str] = []
        for cdef in self.schema.class_definitions:
            target = satisfiable if self.is_satisfiable(cdef.name) else unsatisfiable
            target.append(cdef.name)
        return CoherenceReport(tuple(satisfiable), tuple(unsatisfiable))

    # ------------------------------------------------------------------
    # Witness counts for model synthesis
    # ------------------------------------------------------------------
    def witness_counts(self, scale: int = 1) -> dict:
        """An integer acceptable solution of ``Ψ_S``, keyed by compound
        object — the raw material of model synthesis (Section 3.2).

        Prefers a *minimized* witness (smallest total mass with every
        supported compound class populated) so synthesized databases stay
        small; falls back to the max-support witness when minimization finds
        no small exact certificate.
        """
        from math import lcm

        from ..linear.support import minimize_witness

        if self._min_witness is None:
            self._min_witness = minimize_witness(self.support) \
                or dict(self.support.solution)
        base = self._min_witness
        denominators = [v.denominator for v in base.values()] or [1]
        factor = lcm(*denominators) * scale
        return {self.system.unknowns[index]: int(value * factor)
                for index, value in base.items()}

    def population_ratio(self, numerator: str, denominator: str):
        """Exact bounds on ``|numerator| / |denominator|`` over all models
        (with a nonempty denominator) — see
        :func:`repro.linear.ratios.population_ratio_bounds`.

        Cross-cluster caveat: computed over the strategic expansion, the
        bounds are exact for classes within one cluster and remain *valid
        outer* behaviour for the Theorem 4.6 schema ``S'``; use
        ``strategy="naive"`` for exact cross-cluster ratios on small
        schemas.
        """
        from ..linear.ratios import population_ratio_bounds

        return population_ratio_bounds(self.support, numerator, denominator)

    def stats(self) -> PipelineStats:
        """Pipeline size measurements used by the complexity benchmarks,
        plus per-stage wall-clock timings — a typed
        :class:`~repro.engine.stats.PipelineStats` payload (the timings
        cover ``tables``, ``expansion``, ``system``, ``support``, and —
        once augmented queries ran — ``augmented_seed`` /
        ``augmented_query``)."""
        return self._pipeline.stats()
