"""The CAR reasoner: class satisfiability and friends (Section 3).

:class:`Reasoner` wraps the full two-phase decision procedure:

* **Phase 1** — build the expansion ``S̄`` (compound classes, attributes,
  relations, ``Natt``/``Nrel``) with a configurable enumeration strategy;
* **Phase 2** — derive the homogeneous disequation system ``Ψ_S`` and
  compute its maximal acceptable support.

All queries are then support-membership tests, so one reasoner instance
answers any number of satisfiability/implication questions about its schema
at no extra solving cost.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from ..core.errors import ReasoningError
from ..core.formulas import Formula, FormulaLike, as_formula
from ..core.schema import Schema
from ..core.timing import StageTimer
from ..expansion.expansion import Expansion, build_expansion
from ..expansion.tables import SchemaTables, build_tables
from ..linear.support import SupportResult, acceptable_support
from ..linear.system import PsiSystem, build_system

__all__ = ["Reasoner", "CoherenceReport"]


@dataclass(frozen=True)
class CoherenceReport:
    """Outcome of whole-schema validation.

    A schema is *coherent* when every defined class is satisfiable — the
    paper's schema-validation application of class satisfiability.
    """

    satisfiable: tuple[str, ...]
    unsatisfiable: tuple[str, ...]

    @property
    def is_coherent(self) -> bool:
        return not self.unsatisfiable

    def __str__(self) -> str:
        if self.is_coherent:
            return f"coherent: all {len(self.satisfiable)} classes satisfiable"
        return ("incoherent: unsatisfiable classes "
                + ", ".join(self.unsatisfiable))


class Reasoner:
    """Sound and complete reasoner for a CAR schema.

    Parameters
    ----------
    schema:
        The schema to reason about.
    strategy:
        Compound-class enumeration strategy — ``"auto"`` (default),
        ``"naive"``, ``"strategic"``, or ``"hierarchy"``.
    size_limit:
        Optional guard on the expansion size; exceeding it raises
        :class:`~repro.core.errors.ReasoningError` instead of running out of
        memory on adversarial schemas.
    incremental_augmented:
        Reuse the compound classes of clusters untouched by a query class
        when answering augmented (cross-cluster) queries, re-enumerating
        only the merged cluster.  On by default; the ablation benchmarks and
        equivalence tests turn it off to compare against full rebuilds.
    """

    #: Bound on the memoized formula-verdict cache (LRU eviction beyond it).
    AUGMENTED_CACHE_LIMIT = 256

    def __init__(self, schema: Schema, strategy: str = "auto",
                 size_limit: Optional[int] = None, *,
                 incremental_augmented: bool = True):
        self._schema = schema
        self._strategy = strategy
        self._size_limit = size_limit
        self._incremental_augmented = incremental_augmented
        self._expansion: Optional[Expansion] = None
        self._system: Optional[PsiSystem] = None
        self._support: Optional[SupportResult] = None
        self._tables: Optional[SchemaTables] = None
        self._clusters: Optional[list[frozenset]] = None
        self._cluster_map: Optional[dict] = None
        self._cluster_compound_map: Optional[dict] = None
        self._hierarchy_effective: Optional[bool] = None
        self._precomputed_classes: Optional[tuple] = None
        self._augmented_cache: OrderedDict[Formula, bool] = OrderedDict()
        self._min_witness: Optional[dict] = None
        self._timer = StageTimer()

    # ------------------------------------------------------------------
    # Lazily computed pipeline stages
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def tables(self) -> SchemaTables:
        """The preselection tables of the schema, built once and shared by
        every pipeline stage (enumeration, clusters, explanations)."""
        if self._tables is None:
            with self._timer.stage("tables"):
                self._tables = build_tables(self._schema)
        return self._tables

    @property
    def expansion(self) -> Expansion:
        if self._expansion is None:
            tables = None
            if self._strategy != "naive" and self._precomputed_classes is None:
                tables = self.tables
            with self._timer.stage("expansion"):
                self._expansion = build_expansion(
                    self._schema, self._strategy, size_limit=self._size_limit,
                    tables=tables,
                    precomputed_classes=self._precomputed_classes)
        return self._expansion

    @property
    def system(self) -> PsiSystem:
        if self._system is None:
            with self._timer.stage("system"):
                self._system = build_system(self.expansion)
        return self._system

    @property
    def support(self) -> SupportResult:
        if self._support is None:
            with self._timer.stage("support"):
                self._support = acceptable_support(self.system)
        return self._support

    def timings(self) -> dict[str, float]:
        """Accumulated wall-clock seconds per pipeline stage (``tables``,
        ``expansion``, ``system``, ``support``, ``augmented_query``, …)."""
        return self._timer.readings()

    def supported_compound_classes(self) -> list[frozenset]:
        """Compound classes that are nonempty in some model (all of them
        simultaneously, by closure of acceptable solutions under addition)."""
        return self.support.supported_compound_classes()

    # ------------------------------------------------------------------
    # Satisfiability queries
    # ------------------------------------------------------------------
    def is_satisfiable(self, class_name: str) -> bool:
        """Class satisfiability (the paper's core decision problem):
        does some model of the schema give ``class_name`` an instance?"""
        if class_name not in self._schema.class_symbols:
            raise ReasoningError(
                f"class {class_name!r} does not occur in the schema")
        return any(class_name in members
                   for members in self.supported_compound_classes())

    def is_formula_satisfiable(self, formula: FormulaLike) -> bool:
        """Is there a model with an object satisfying ``formula``?

        Only class symbols of the schema may occur in the formula; this is
        the generalization that logical implication reduces to.

        Completeness across clusters: the strategic expansion only holds
        compound classes within one cluster of ``G_S`` — sound for class
        satisfiability (Theorem 4.6) but *incomplete* for formulas whose
        classes span clusters (an object may belong to classes of several
        clusters in a real model).  A positive answer from the supported
        compound classes is always sound; a negative one is final only when
        the enumeration was complete for this formula.  Otherwise the query
        is decided on an *augmented* schema with a fresh class whose isa is
        the formula — its positive mentions merge the touched clusters, so
        plain class satisfiability (always correct) gives the answer.
        """
        formula = as_formula(formula)
        unknown = formula.classes() - self._schema.class_symbols
        if unknown:
            raise ReasoningError(
                f"formula mentions classes outside the schema: {sorted(unknown)}")
        if any(formula.satisfied_by(members)
               for members in self.supported_compound_classes()):
            return True
        if self.enumeration_complete_for(formula.classes()):
            return False
        return self._augmented_satisfiable(formula)

    # ------------------------------------------------------------------
    # Cross-cluster completeness machinery
    # ------------------------------------------------------------------
    def enumeration_complete_for(self, class_names) -> bool:
        """Is the compound-class enumeration complete for queries touching
        exactly ``class_names``?

        True for the naive strategy (all subsets), for genuine hierarchies
        (incomparable classes are provably disjoint), and whenever the
        touched classes sit inside a single cluster of ``G_S``.
        """
        if self._strategy == "naive":
            return True
        if self._is_hierarchy():
            return True
        clusters = self._cluster_of()
        touched = {clusters[name] for name in class_names if name in clusters}
        return len(touched) <= 1

    def _is_hierarchy(self) -> bool:
        if self._hierarchy_effective is None:
            if self._strategy in ("auto", "hierarchy"):
                from ..expansion.graph import hierarchy_compound_classes

                self._hierarchy_effective = (
                    hierarchy_compound_classes(self._schema, self.tables)
                    is not None)
            else:
                self._hierarchy_effective = False
        return self._hierarchy_effective

    def clusters(self) -> list[frozenset]:
        """The clusters of ``G_S`` (Theorem 4.6), computed once over the
        shared preselection tables and cached."""
        if self._clusters is None:
            from ..expansion.graph import clusters

            self._clusters = clusters(self._schema, self.tables)
        return self._clusters

    def _cluster_of(self) -> dict:
        if self._cluster_map is None:
            mapping: dict = {}
            for index, component in enumerate(self.clusters()):
                for name in component:
                    mapping[name] = index
            self._cluster_map = mapping
        return self._cluster_map

    def _compounds_by_cluster(self) -> dict:
        """Nonempty compound classes of the expansion grouped by the cluster
        containing them — the reuse units of incremental augmented queries.
        Only meaningful when the enumeration was cluster-confined (strategic)."""
        if self._cluster_compound_map is None:
            mapping = self._cluster_of()
            grouped: dict = {}
            for members in self.expansion.compound_classes:
                if not members:
                    continue
                grouped.setdefault(mapping[next(iter(members))],
                                   []).append(members)
            self._cluster_compound_map = grouped
        return self._cluster_compound_map

    def fresh_class_name(self, base: str = "Query") -> str:
        """A class symbol not clashing with any symbol of the schema."""
        taken = (set(self._schema.class_symbols)
                 | set(self._schema.attribute_symbols)
                 | set(self._schema.relation_symbols))
        candidate = f"__{base}"
        counter = 0
        while candidate in taken:
            counter += 1
            candidate = f"__{base}{counter}"
        return candidate

    def augmented_with(self, cdef) -> "Reasoner":
        """A reasoner over this schema plus one query class definition.

        When this reasoner enumerated strategically and has its pipeline
        built, the augmented reasoner is *seeded incrementally*: preselection
        tables are extended by one row instead of rebuilt, and compound
        classes of every cluster the query class does not touch are reused
        verbatim — only the merged cluster is re-enumerated.  The seeding is
        an optimization only; verdicts are identical to a cold rebuild (the
        equivalence suite asserts this).
        """
        augmented = Reasoner(self._schema.with_class(cdef),
                             strategy=self._strategy,
                             size_limit=self._size_limit,
                             incremental_augmented=self._incremental_augmented)
        if self._can_seed_augmented(cdef):
            self._seed_augmented(augmented, cdef)
        return augmented

    def _can_seed_augmented(self, cdef) -> bool:
        """Is the incremental path applicable?  Requires a fresh query class
        and a cluster-confined (strategic) base enumeration that has already
        been built — otherwise a cold build is both needed and cheapest."""
        return (self._incremental_augmented
                and self._expansion is not None
                and self._strategy in ("auto", "strategic")
                and not self._is_hierarchy()
                and cdef.name not in self._schema.class_symbols)

    def _seed_augmented(self, augmented: "Reasoner", cdef) -> None:
        from ..expansion.enumerate import dpll_compound_classes
        from ..expansion.graph import clusters as compute_clusters

        with self._timer.stage("augmented_seed"):
            aug_tables = self.tables.extended_with(augmented._schema, cdef.name)
            aug_clusters = compute_clusters(augmented._schema, aug_tables)
            base_index = {component: index
                          for index, component in enumerate(self.clusters())}
            grouped = self._compounds_by_cluster()
            combined: list[frozenset] = [frozenset()]
            for component in aug_clusters:
                base_at = base_index.get(component)
                if base_at is not None:
                    # Untouched cluster: same universe, same definitions,
                    # same table rows — the enumeration result is reusable.
                    combined.extend(grouped.get(base_at, ()))
                else:
                    combined.extend(
                        members for members in dpll_compound_classes(
                            augmented._schema, sorted(component), aug_tables)
                        if members)
        augmented._tables = aug_tables
        augmented._clusters = aug_clusters
        augmented._hierarchy_effective = False
        augmented._precomputed_classes = tuple(combined)

    def _augmented_satisfiable(self, formula: Formula) -> bool:
        from ..core.schema import ClassDef

        cached = self._augmented_cache.get(formula)
        if cached is not None:
            self._augmented_cache.move_to_end(formula)
            return cached
        name = self.fresh_class_name()
        with self._timer.stage("augmented_query"):
            verdict = self.augmented_with(
                ClassDef(name, isa=formula)).is_satisfiable(name)
        self._augmented_cache[formula] = verdict
        if len(self._augmented_cache) > self.AUGMENTED_CACHE_LIMIT:
            self._augmented_cache.popitem(last=False)
        return verdict

    def satisfiable_classes(self) -> list[str]:
        return [name for name in sorted(self._schema.class_symbols)
                if self.is_satisfiable(name)]

    def unsatisfiable_classes(self) -> list[str]:
        return [name for name in sorted(self._schema.class_symbols)
                if not self.is_satisfiable(name)]

    def check_coherence(self) -> CoherenceReport:
        """Schema validation: partition the *defined* classes by
        satisfiability."""
        satisfiable: list[str] = []
        unsatisfiable: list[str] = []
        for cdef in self._schema.class_definitions:
            target = satisfiable if self.is_satisfiable(cdef.name) else unsatisfiable
            target.append(cdef.name)
        return CoherenceReport(tuple(satisfiable), tuple(unsatisfiable))

    # ------------------------------------------------------------------
    # Witness counts for model synthesis
    # ------------------------------------------------------------------
    def witness_counts(self, scale: int = 1) -> dict:
        """An integer acceptable solution of ``Ψ_S``, keyed by compound
        object — the raw material of model synthesis (Section 3.2).

        Prefers a *minimized* witness (smallest total mass with every
        supported compound class populated) so synthesized databases stay
        small; falls back to the max-support witness when minimization finds
        no small exact certificate.
        """
        from math import lcm

        from ..linear.support import minimize_witness

        if self._min_witness is None:
            self._min_witness = minimize_witness(self.support) \
                or dict(self.support.solution)
        base = self._min_witness
        denominators = [v.denominator for v in base.values()] or [1]
        factor = lcm(*denominators) * scale
        return {self.system.unknowns[index]: int(value * factor)
                for index, value in base.items()}

    def population_ratio(self, numerator: str, denominator: str):
        """Exact bounds on ``|numerator| / |denominator|`` over all models
        (with a nonempty denominator) — see
        :func:`repro.linear.ratios.population_ratio_bounds`.

        Cross-cluster caveat: computed over the strategic expansion, the
        bounds are exact for classes within one cluster and remain *valid
        outer* behaviour for the Theorem 4.6 schema ``S'``; use
        ``strategy="naive"`` for exact cross-cluster ratios on small
        schemas.
        """
        from ..linear.ratios import population_ratio_bounds

        return population_ratio_bounds(self.support, numerator, denominator)

    def stats(self) -> dict:
        """Pipeline size measurements used by the complexity benchmarks,
        plus per-stage wall-clock readings (``time_tables``,
        ``time_expansion``, ``time_system``, ``time_support``, and — once
        augmented queries ran — ``time_augmented_seed`` /
        ``time_augmented_query``)."""
        stats = {
            "classes": len(self._schema.class_symbols),
            "schema_size": self._schema.syntactic_size(),
            "compound_classes": len(self.expansion.compound_classes),
            "expansion_size": self.expansion.size(),
            "psi_unknowns": self.system.n_unknowns(),
            "psi_constraints": self.system.n_constraints(),
            "psi_size": self.system.size(),
            "lp_rounds": self.support.rounds,
            "supported": len(self.support.support),
        }
        stats.update(self._timer.as_stats())
        return stats
