"""The CAR reasoner: class satisfiability and friends (Section 3).

:class:`Reasoner` wraps the full two-phase decision procedure:

* **Phase 1** — build the expansion ``S̄`` (compound classes, attributes,
  relations, ``Natt``/``Nrel``) with a configurable enumeration strategy;
* **Phase 2** — derive the homogeneous disequation system ``Ψ_S`` and
  compute its maximal acceptable support.

All queries are then support-membership tests, so one reasoner instance
answers any number of satisfiability/implication questions about its schema
at no extra solving cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.errors import ReasoningError
from ..core.formulas import Formula, FormulaLike, as_formula
from ..core.schema import Schema
from ..expansion.expansion import Expansion, build_expansion
from ..linear.support import SupportResult, acceptable_support
from ..linear.system import PsiSystem, build_system

__all__ = ["Reasoner", "CoherenceReport"]


@dataclass(frozen=True)
class CoherenceReport:
    """Outcome of whole-schema validation.

    A schema is *coherent* when every defined class is satisfiable — the
    paper's schema-validation application of class satisfiability.
    """

    satisfiable: tuple[str, ...]
    unsatisfiable: tuple[str, ...]

    @property
    def is_coherent(self) -> bool:
        return not self.unsatisfiable

    def __str__(self) -> str:
        if self.is_coherent:
            return f"coherent: all {len(self.satisfiable)} classes satisfiable"
        return ("incoherent: unsatisfiable classes "
                + ", ".join(self.unsatisfiable))


class Reasoner:
    """Sound and complete reasoner for a CAR schema.

    Parameters
    ----------
    schema:
        The schema to reason about.
    strategy:
        Compound-class enumeration strategy — ``"auto"`` (default),
        ``"naive"``, ``"strategic"``, or ``"hierarchy"``.
    size_limit:
        Optional guard on the expansion size; exceeding it raises
        :class:`~repro.core.errors.ReasoningError` instead of running out of
        memory on adversarial schemas.
    """

    def __init__(self, schema: Schema, strategy: str = "auto",
                 size_limit: Optional[int] = None):
        self._schema = schema
        self._strategy = strategy
        self._size_limit = size_limit
        self._expansion: Optional[Expansion] = None
        self._system: Optional[PsiSystem] = None
        self._support: Optional[SupportResult] = None
        self._cluster_map: Optional[dict] = None
        self._hierarchy_effective: Optional[bool] = None
        self._augmented_cache: dict[Formula, bool] = {}
        self._min_witness: Optional[dict] = None

    # ------------------------------------------------------------------
    # Lazily computed pipeline stages
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def expansion(self) -> Expansion:
        if self._expansion is None:
            self._expansion = build_expansion(
                self._schema, self._strategy, size_limit=self._size_limit)
        return self._expansion

    @property
    def system(self) -> PsiSystem:
        if self._system is None:
            self._system = build_system(self.expansion)
        return self._system

    @property
    def support(self) -> SupportResult:
        if self._support is None:
            self._support = acceptable_support(self.system)
        return self._support

    def supported_compound_classes(self) -> list[frozenset]:
        """Compound classes that are nonempty in some model (all of them
        simultaneously, by closure of acceptable solutions under addition)."""
        return self.support.supported_compound_classes()

    # ------------------------------------------------------------------
    # Satisfiability queries
    # ------------------------------------------------------------------
    def is_satisfiable(self, class_name: str) -> bool:
        """Class satisfiability (the paper's core decision problem):
        does some model of the schema give ``class_name`` an instance?"""
        if class_name not in self._schema.class_symbols:
            raise ReasoningError(
                f"class {class_name!r} does not occur in the schema")
        return any(class_name in members
                   for members in self.supported_compound_classes())

    def is_formula_satisfiable(self, formula: FormulaLike) -> bool:
        """Is there a model with an object satisfying ``formula``?

        Only class symbols of the schema may occur in the formula; this is
        the generalization that logical implication reduces to.

        Completeness across clusters: the strategic expansion only holds
        compound classes within one cluster of ``G_S`` — sound for class
        satisfiability (Theorem 4.6) but *incomplete* for formulas whose
        classes span clusters (an object may belong to classes of several
        clusters in a real model).  A positive answer from the supported
        compound classes is always sound; a negative one is final only when
        the enumeration was complete for this formula.  Otherwise the query
        is decided on an *augmented* schema with a fresh class whose isa is
        the formula — its positive mentions merge the touched clusters, so
        plain class satisfiability (always correct) gives the answer.
        """
        formula = as_formula(formula)
        unknown = formula.classes() - self._schema.class_symbols
        if unknown:
            raise ReasoningError(
                f"formula mentions classes outside the schema: {sorted(unknown)}")
        if any(formula.satisfied_by(members)
               for members in self.supported_compound_classes()):
            return True
        if self.enumeration_complete_for(formula.classes()):
            return False
        return self._augmented_satisfiable(formula)

    # ------------------------------------------------------------------
    # Cross-cluster completeness machinery
    # ------------------------------------------------------------------
    def enumeration_complete_for(self, class_names) -> bool:
        """Is the compound-class enumeration complete for queries touching
        exactly ``class_names``?

        True for the naive strategy (all subsets), for genuine hierarchies
        (incomparable classes are provably disjoint), and whenever the
        touched classes sit inside a single cluster of ``G_S``.
        """
        if self._strategy == "naive":
            return True
        if self._is_hierarchy():
            return True
        clusters = self._cluster_of()
        touched = {clusters[name] for name in class_names if name in clusters}
        return len(touched) <= 1

    def _is_hierarchy(self) -> bool:
        if self._hierarchy_effective is None:
            if self._strategy in ("auto", "hierarchy"):
                from ..expansion.graph import hierarchy_compound_classes

                self._hierarchy_effective = (
                    hierarchy_compound_classes(self._schema) is not None)
            else:
                self._hierarchy_effective = False
        return self._hierarchy_effective

    def _cluster_of(self) -> dict:
        if self._cluster_map is None:
            from ..expansion.graph import clusters
            from ..expansion.tables import build_tables

            mapping: dict = {}
            for index, component in enumerate(
                    clusters(self._schema, build_tables(self._schema))):
                for name in component:
                    mapping[name] = index
            self._cluster_map = mapping
        return self._cluster_map

    def fresh_class_name(self, base: str = "Query") -> str:
        """A class symbol not clashing with any symbol of the schema."""
        taken = (set(self._schema.class_symbols)
                 | set(self._schema.attribute_symbols)
                 | set(self._schema.relation_symbols))
        candidate = f"__{base}"
        counter = 0
        while candidate in taken:
            counter += 1
            candidate = f"__{base}{counter}"
        return candidate

    def augmented_with(self, cdef) -> "Reasoner":
        """A reasoner over this schema plus one query class definition."""
        return Reasoner(self._schema.with_class(cdef),
                        strategy=self._strategy,
                        size_limit=self._size_limit)

    def _augmented_satisfiable(self, formula: Formula) -> bool:
        from ..core.schema import ClassDef

        cached = self._augmented_cache.get(formula)
        if cached is not None:
            return cached
        name = self.fresh_class_name()
        verdict = self.augmented_with(
            ClassDef(name, isa=formula)).is_satisfiable(name)
        self._augmented_cache[formula] = verdict
        return verdict

    def satisfiable_classes(self) -> list[str]:
        return [name for name in sorted(self._schema.class_symbols)
                if self.is_satisfiable(name)]

    def unsatisfiable_classes(self) -> list[str]:
        return [name for name in sorted(self._schema.class_symbols)
                if not self.is_satisfiable(name)]

    def check_coherence(self) -> CoherenceReport:
        """Schema validation: partition the *defined* classes by
        satisfiability."""
        satisfiable: list[str] = []
        unsatisfiable: list[str] = []
        for cdef in self._schema.class_definitions:
            target = satisfiable if self.is_satisfiable(cdef.name) else unsatisfiable
            target.append(cdef.name)
        return CoherenceReport(tuple(satisfiable), tuple(unsatisfiable))

    # ------------------------------------------------------------------
    # Witness counts for model synthesis
    # ------------------------------------------------------------------
    def witness_counts(self, scale: int = 1) -> dict:
        """An integer acceptable solution of ``Ψ_S``, keyed by compound
        object — the raw material of model synthesis (Section 3.2).

        Prefers a *minimized* witness (smallest total mass with every
        supported compound class populated) so synthesized databases stay
        small; falls back to the max-support witness when minimization finds
        no small exact certificate.
        """
        from math import lcm

        from ..linear.support import minimize_witness

        if self._min_witness is None:
            self._min_witness = minimize_witness(self.support) \
                or dict(self.support.solution)
        base = self._min_witness
        denominators = [v.denominator for v in base.values()] or [1]
        factor = lcm(*denominators) * scale
        return {self.system.unknowns[index]: int(value * factor)
                for index, value in base.items()}

    def population_ratio(self, numerator: str, denominator: str):
        """Exact bounds on ``|numerator| / |denominator|`` over all models
        (with a nonempty denominator) — see
        :func:`repro.linear.ratios.population_ratio_bounds`.

        Cross-cluster caveat: computed over the strategic expansion, the
        bounds are exact for classes within one cluster and remain *valid
        outer* behaviour for the Theorem 4.6 schema ``S'``; use
        ``strategy="naive"`` for exact cross-cluster ratios on small
        schemas.
        """
        from ..linear.ratios import population_ratio_bounds

        return population_ratio_bounds(self.support, numerator, denominator)

    def stats(self) -> dict:
        """Pipeline size measurements used by the complexity benchmarks."""
        return {
            "classes": len(self._schema.class_symbols),
            "schema_size": self._schema.syntactic_size(),
            "compound_classes": len(self.expansion.compound_classes),
            "expansion_size": self.expansion.size(),
            "psi_unknowns": self.system.n_unknowns(),
            "psi_constraints": self.system.n_constraints(),
            "psi_size": self.system.size(),
            "lp_rounds": self.support.rounds,
            "supported": len(self.support.support),
        }
