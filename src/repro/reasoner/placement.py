"""Placement of defined classes: where does a formula sit in the hierarchy?

The classic type-inference service (named as an application in Section
2.3): given a *defined* class — a class-formula rather than a symbol —
compute its position in the implied subsumption hierarchy: the most
specific named superclasses (parents), the most general named subclasses
(children), and any named classes it is equivalent to.

Used for schema authoring ("where would `Person ⊓ ¬Professor ⊓ ≥1 teaches`
land?"), query classification, and integrating views.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.errors import ReasoningError
from ..core.formulas import Formula, FormulaLike, Lit, as_formula
from .implication import implies_isa
from .satisfiability import Reasoner

__all__ = ["Placement", "place_formula"]


@dataclass(frozen=True)
class Placement:
    """The hierarchy position of a defined class.

    ``parents`` are the most specific named classes subsuming the formula;
    ``children`` the most general named classes it subsumes (restricted to
    satisfiable ones); ``equivalents`` named classes coinciding with it in
    every model.  ``satisfiable`` is False when the formula can never have
    an instance (then everything holds vacuously and the lists are empty).
    """

    formula: Formula
    satisfiable: bool
    parents: tuple[str, ...]
    children: tuple[str, ...]
    equivalents: tuple[str, ...]

    def __str__(self) -> str:
        if not self.satisfiable:
            return f"{self.formula}: unsatisfiable"
        parts = [f"{self.formula}:"]
        if self.equivalents:
            parts.append("  ≡ " + ", ".join(self.equivalents))
        parts.append("  parents: " + (", ".join(self.parents) or "(top)"))
        parts.append("  children: " + (", ".join(self.children) or "(none)"))
        return "\n".join(parts)


def _subsumed_by(reasoner: Reasoner, query: str, name: str) -> bool:
    return implies_isa(reasoner, query, Lit(name))


def place_formula(reasoner: Reasoner, formula: FormulaLike) -> Placement:
    """Compute the hierarchy placement of ``formula``.

    Internally inserts a fresh class defined by the formula into an
    augmented schema (both directions: ``Q isa F`` gives the upper
    neighbours; the lower neighbours come from testing each named class
    against ``F`` via :func:`implies_isa`).
    """
    from ..core.schema import ClassDef

    formula = as_formula(formula)
    unknown = formula.classes() - reasoner.schema.class_symbols
    if unknown:
        raise ReasoningError(
            f"formula mentions classes outside the schema: {sorted(unknown)}")

    if not reasoner.is_formula_satisfiable(formula):
        return Placement(formula, False, (), (), ())

    # Augment with Q isa F. Since membership in Q is only *necessary*, Q
    # answers "F ⊑ X" queries (everything satisfying the isa chain), while
    # "X ⊑ F" is asked directly of the original reasoner.
    query = reasoner.fresh_class_name("Defined")
    augmented = reasoner.augmented_with(ClassDef(query, isa=formula))

    names = sorted(reasoner.schema.class_symbols)
    uppers = [name for name in names
              if _subsumed_by(augmented, query, name)]
    lowers = [name for name in names
              if reasoner.is_satisfiable(name)
              and implies_isa(reasoner, name, formula)]

    equivalents = tuple(sorted(set(uppers) & set(lowers)))
    uppers = [name for name in uppers if name not in equivalents]
    lowers = [name for name in lowers if name not in equivalents]

    # Reduce to direct neighbours: drop anything implied through another.
    def most_specific(candidates: list[str]) -> tuple[str, ...]:
        keep = []
        for name in candidates:
            if not any(other != name
                       and implies_isa(reasoner, other, Lit(name))
                       for other in candidates):
                keep.append(name)
        return tuple(keep)

    def most_general(candidates: list[str]) -> tuple[str, ...]:
        keep = []
        for name in candidates:
            if not any(other != name
                       and implies_isa(reasoner, name, Lit(other))
                       for other in candidates):
                keep.append(name)
        return tuple(keep)

    return Placement(formula, True, most_specific(uppers),
                     most_general(lowers), equivalents)
