"""Schema transformations — Theorem 4.5's arity reduction (reification).

The number of compound relations grows exponentially with relation arity.
Theorem 4.5: when every role-clause of every nonbinary relation consists of
a single role-literal, the schema can be rewritten in linear time with only
binary relations, preserving class satisfiability.

The construction replaces each nonbinary relation ``R(U1, …, UK)`` by

* a fresh *tuple class* ``R__tuple``, declared disjoint from every other
  class of the schema (and from the other tuple classes), which represents
  the reified tuples of ``R``;
* ``K`` fresh binary relations ``R__Ui(tuple, filler)`` with constraints
  ``(tuple : R__tuple)`` and ``(filler : Fi)`` — ``Fi`` being the formula
  the single-literal role-clauses of ``R`` attach to ``Ui``;
* a ``(1, 1)`` participation of ``R__tuple`` in each ``R__Ui[tuple]``
  (every reified tuple has exactly one component per role);
* each participation constraint ``R[Ui] : (x, y)`` of an original class is
  rewritten to ``R__Ui[filler] : (x, y)``.

Because each tuple class is disjoint from everything, it contributes a
single compound class to the expansion — this is exactly how the theorem
kills the ``|C̄|^K`` blow-up, which ``bench_theorem45_arity`` measures.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.cardinality import Card
from ..core.errors import SchemaError
from ..core.formulas import TOP, Clause, Formula, Lit, conjunction
from ..core.schema import (
    ClassDef,
    ParticipationSpec,
    RelationDef,
    RoleClause,
    RoleLiteral,
    Schema,
)

__all__ = ["ReifiedRelation", "ReificationResult", "reify_nonbinary_relations"]


@dataclass(frozen=True)
class ReifiedRelation:
    """How one nonbinary relation was rewritten."""

    relation: str
    tuple_class: str
    role_relations: dict[str, str]  # original role -> fresh binary relation


@dataclass(frozen=True)
class ReificationResult:
    """The rewritten schema plus the renaming map."""

    schema: Schema
    reified: tuple[ReifiedRelation, ...]

    def was_changed(self) -> bool:
        return bool(self.reified)


def _single_literal_role_formulae(rdef: RelationDef) -> dict[str, Formula]:
    """The formula each role must satisfy, merging single-literal clauses.

    Raises :class:`SchemaError` when some role-clause is disjunctive — the
    precondition of Theorem 4.5.
    """
    formulae: dict[str, Formula] = {role: TOP for role in rdef.roles}
    for clause in rdef.constraints:
        if len(clause) != 1:
            raise SchemaError(
                f"relation {rdef.name} has a disjunctive role-clause; "
                "Theorem 4.5 requires single-literal role-clauses on "
                "nonbinary relations"
            )
        literal = clause.literals[0]
        formulae[literal.role] = formulae[literal.role] & literal.formula
    return formulae


def _fresh(base: str, taken: set[str]) -> str:
    candidate = base
    counter = 0
    while candidate in taken:
        counter += 1
        candidate = f"{base}_{counter}"
    taken.add(candidate)
    return candidate


def reify_nonbinary_relations(schema: Schema) -> ReificationResult:
    """Apply Theorem 4.5: rewrite every relation of arity ≥ 3.

    Binary (and unary) relations are kept as they are.  The result's class
    satisfiability agrees with the input's on every original class symbol —
    a property the test suite verifies against the brute-force oracle.
    """
    nonbinary = [rdef for rdef in schema.relation_definitions if rdef.arity >= 3]
    if not nonbinary:
        return ReificationResult(schema, ())

    taken = set(schema.class_symbols) | set(schema.relation_symbols) | set(
        schema.attribute_symbols)
    reified: list[ReifiedRelation] = []
    new_relations: list[RelationDef] = [
        rdef for rdef in schema.relation_definitions if rdef.arity < 3
    ]
    tuple_class_defs: list[ClassDef] = []
    # original (relation, role) -> (binary relation, role to use)
    rewrite: dict[tuple[str, str], tuple[str, str]] = {}

    for rdef in nonbinary:
        formulae = _single_literal_role_formulae(rdef)
        tuple_class = _fresh(f"{rdef.name}__tuple", taken)
        role_relations: dict[str, str] = {}
        participations: list[ParticipationSpec] = []
        for role in rdef.roles:
            binary_name = _fresh(f"{rdef.name}__{role}", taken)
            role_relations[role] = binary_name
            constraints = [RoleClause(RoleLiteral("tuple", Lit(tuple_class)))]
            if formulae[role].clauses:
                constraints.append(
                    RoleClause(RoleLiteral("filler", formulae[role])))
            new_relations.append(
                RelationDef(binary_name, ("tuple", "filler"), constraints))
            participations.append(
                ParticipationSpec(binary_name, "tuple", Card(1, 1)))
            rewrite[(rdef.name, role)] = (binary_name, "filler")
        tuple_class_defs.append((tuple_class, participations))
        reified.append(ReifiedRelation(rdef.name, tuple_class, role_relations))

    # Tuple classes are pairwise disjoint and disjoint from every original
    # class symbol.
    original_symbols = sorted(schema.class_symbols)
    tuple_names = [name for name, _ in tuple_class_defs]
    new_classes: list[ClassDef] = []
    for name, participations in tuple_class_defs:
        others = [other for other in original_symbols + tuple_names if other != name]
        isa = conjunction(
            Clause((Lit(other, positive=False),)) for other in others
        )
        new_classes.append(ClassDef(name, isa=isa, participates=participations))

    # Rewrite participation constraints of the original classes.
    for cdef in schema.class_definitions:
        new_parts: list[ParticipationSpec] = []
        for spec in cdef.participates:
            target = rewrite.get((spec.relation, spec.role))
            if target is None:
                new_parts.append(spec)
            else:
                relation, role = target
                new_parts.append(ParticipationSpec(relation, role, spec.card))
        new_classes.append(cdef.replace(participates=new_parts))

    return ReificationResult(Schema(new_classes, new_relations), tuple(reified))
