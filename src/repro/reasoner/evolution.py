"""Schema evolution analysis: what did an edit change *semantically*?

Schema edits routinely change more than they appear to: tightening one
cardinality can silently make a distant subclass unsatisfiable, and
removing a disjointness can retract subsumptions clients rely on.  This
module diffs two schema versions at the level of *derived* facts:

* satisfiability per class (newly impossible / newly possible classes);
* the implied subsumption set over the shared classes;
* implied disjointness over the shared classes;
* implied attribute-cardinality bounds for shared class/attribute pairs.

:func:`compare_schemas` returns an :class:`EvolutionReport`;
``report.is_backward_compatible`` holds when no shared class lost
satisfiability and no implied subsumption or disjointness that clients
could have observed was retracted.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.cardinality import Card
from ..core.schema import AttrRef, Schema
from ..engine.config import EngineConfig
from .implication import classify, implied_attribute_bounds, implied_disjoint
from .satisfiability import Reasoner

__all__ = ["EvolutionReport", "compare_schemas"]


@dataclass(frozen=True)
class EvolutionReport:
    """Semantic diff between two schema versions."""

    added_classes: tuple[str, ...]
    removed_classes: tuple[str, ...]
    newly_unsatisfiable: tuple[str, ...]
    newly_satisfiable: tuple[str, ...]
    lost_subsumptions: tuple[tuple[str, str], ...]
    gained_subsumptions: tuple[tuple[str, str], ...]
    lost_disjointness: tuple[tuple[str, str], ...]
    gained_disjointness: tuple[tuple[str, str], ...]
    changed_attribute_bounds: tuple[tuple[str, str, str, str], ...]
    # (class, attr ref rendered, old bounds, new bounds)

    @property
    def is_backward_compatible(self) -> bool:
        """No shared class died, no derived guarantee was retracted."""
        return not (self.newly_unsatisfiable or self.lost_subsumptions
                    or self.lost_disjointness)

    def __str__(self) -> str:
        lines = []
        if self.added_classes:
            lines.append("added classes: " + ", ".join(self.added_classes))
        if self.removed_classes:
            lines.append("removed classes: " + ", ".join(self.removed_classes))
        for label, pairs in (
                ("newly unsatisfiable", self.newly_unsatisfiable),
                ("newly satisfiable", self.newly_satisfiable)):
            if pairs:
                lines.append(f"{label}: " + ", ".join(pairs))
        for label, pairs in (
                ("lost subsumptions", self.lost_subsumptions),
                ("gained subsumptions", self.gained_subsumptions),
                ("lost disjointness", self.lost_disjointness),
                ("gained disjointness", self.gained_disjointness)):
            if pairs:
                lines.append(f"{label}: "
                             + ", ".join(f"{a}⊑{b}" if "subsum" in label
                                         else f"{a}⟂{b}" for a, b in pairs))
        for name, ref, old, new in self.changed_attribute_bounds:
            lines.append(f"bounds of {ref} on {name}: {old} -> {new}")
        if not lines:
            lines.append("no derived facts changed")
        verdict = ("backward compatible" if self.is_backward_compatible
                   else "NOT backward compatible")
        return f"[{verdict}]\n" + "\n".join(f"  {line}" for line in lines)


def _bounds_or_none(reasoner: Reasoner, name: str,
                    ref: AttrRef) -> Optional[Card]:
    if name not in reasoner.schema.class_symbols:
        return None
    if not reasoner.is_satisfiable(name):
        return None
    return implied_attribute_bounds(reasoner, name, ref)


def compare_schemas(old: Schema, new: Schema, strategy: str = "auto", *,
                    config: Optional[EngineConfig] = None) -> EvolutionReport:
    """Compute the semantic diff between two schema versions.

    ``config`` supplies the full engine configuration for both reasoners;
    when omitted, one is derived from ``strategy`` alone.
    """
    if config is None:
        config = EngineConfig(strategy=strategy)
    before = Reasoner(old, config=config)
    after = Reasoner(new, config=config)

    old_names = set(old.class_symbols)
    new_names = set(new.class_symbols)
    shared = sorted(old_names & new_names)

    newly_unsat = tuple(
        name for name in shared
        if before.is_satisfiable(name) and not after.is_satisfiable(name))
    newly_sat = tuple(
        name for name in shared
        if not before.is_satisfiable(name) and after.is_satisfiable(name))

    old_classification = classify(before)
    new_classification = classify(after)
    shared_set = set(shared)
    old_subs = {(a, b) for a, b in old_classification.subsumptions
                if a in shared_set and b in shared_set}
    new_subs = {(a, b) for a, b in new_classification.subsumptions
                if a in shared_set and b in shared_set}

    old_disjoint = set()
    new_disjoint = set()
    for i, a in enumerate(shared):
        for b in shared[i + 1:]:
            if implied_disjoint(before, a, b):
                old_disjoint.add((a, b))
            if implied_disjoint(after, a, b):
                new_disjoint.add((a, b))

    changed_bounds: list[tuple[str, str, str, str]] = []
    shared_refs = old.attribute_refs() & new.attribute_refs()
    for name in shared:
        for ref in sorted(shared_refs, key=str):
            old_bounds = _bounds_or_none(before, name, ref)
            new_bounds = _bounds_or_none(after, name, ref)
            if old_bounds is None or new_bounds is None:
                continue
            if old_bounds != new_bounds:
                changed_bounds.append(
                    (name, str(ref), str(old_bounds), str(new_bounds)))

    return EvolutionReport(
        added_classes=tuple(sorted(new_names - old_names)),
        removed_classes=tuple(sorted(old_names - new_names)),
        newly_unsatisfiable=newly_unsat,
        newly_satisfiable=newly_sat,
        lost_subsumptions=tuple(sorted(old_subs - new_subs)),
        gained_subsumptions=tuple(sorted(new_subs - old_subs)),
        lost_disjointness=tuple(sorted(old_disjoint - new_disjoint)),
        gained_disjointness=tuple(sorted(new_disjoint - old_disjoint)),
        changed_attribute_bounds=tuple(changed_bounds),
    )
