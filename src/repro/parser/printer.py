"""Pretty-printer: render schema objects back to the concrete CAR syntax.

``parse_schema(render_schema(s))`` is the identity on the AST — a property
the test suite checks with hypothesis-generated schemas.
"""

from __future__ import annotations

from ..core.cardinality import Card, INFINITY
from ..core.formulas import Clause, Formula, Lit
from ..core.schema import (
    AttrRef,
    AttributeSpec,
    ClassDef,
    ParticipationSpec,
    RelationDef,
    RoleClause,
    Schema,
)

__all__ = ["render_schema", "render_class", "render_relation", "render_formula",
           "render_card"]


def render_card(card: Card) -> str:
    upper = "inf" if card.upper is INFINITY else str(card.upper)
    return f"({card.lower}, {upper})"


def _render_literal(lit: Lit) -> str:
    return lit.name if lit.positive else f"not {lit.name}"


def _render_clause(clause: Clause, *, parenthesize: bool) -> str:
    if not clause.literals:
        raise ValueError("the empty clause has no concrete syntax")
    body = " or ".join(_render_literal(lit) for lit in clause)
    if parenthesize and len(clause) > 1:
        return f"({body})"
    return body


def render_formula(formula: Formula) -> str:
    """Concrete syntax of a class-formula (``top`` for the empty conjunction)."""
    if not formula.clauses:
        return "top"
    multi = len(formula) > 1
    return " and ".join(_render_clause(c, parenthesize=multi) for c in formula)


def _render_attr_ref(ref: AttrRef) -> str:
    return f"(inv {ref.name})" if ref.inverse else ref.name


def _render_attr_spec(spec: AttributeSpec) -> str:
    return (f"{_render_attr_ref(spec.ref)} : {render_card(spec.card)} "
            f"{render_formula(spec.filler)}")


def _render_part_spec(spec: ParticipationSpec) -> str:
    return f"{spec.relation}[{spec.role}] : {render_card(spec.card)}"


def render_class(cdef: ClassDef, indent: str = "    ") -> str:
    """Concrete syntax of one class definition."""
    lines = [f"class {cdef.name}"]
    if cdef.isa.clauses:
        lines.append(f"{indent}isa {render_formula(cdef.isa)}")
    if cdef.attributes:
        lines.append(f"{indent}attributes")
        rendered = [f"{indent}{indent}{_render_attr_spec(spec)}" for spec in cdef.attributes]
        lines.append(";\n".join(rendered))
    if cdef.participates:
        lines.append(f"{indent}participates in")
        rendered = [f"{indent}{indent}{_render_part_spec(spec)}" for spec in cdef.participates]
        lines.append(";\n".join(rendered))
    lines.append("endclass")
    return "\n".join(lines)


def _render_role_clause(clause: RoleClause) -> str:
    return " or ".join(
        f"({lit.role} : {render_formula(lit.formula)})" for lit in clause
    )


def render_relation(rdef: RelationDef, indent: str = "    ") -> str:
    """Concrete syntax of one relation definition."""
    lines = [f"relation {rdef.name}({', '.join(rdef.roles)})"]
    if rdef.constraints:
        lines.append(f"{indent}constraints")
        rendered = [f"{indent}{indent}{_render_role_clause(c)}" for c in rdef.constraints]
        lines.append(";\n".join(rendered))
    lines.append("endrelation")
    return "\n".join(lines)


def render_schema(schema: Schema) -> str:
    """Concrete syntax of a whole schema (classes first, then relations)."""
    blocks = [render_class(cdef) for cdef in schema.class_definitions]
    blocks.extend(render_relation(rdef) for rdef in schema.relation_definitions)
    return "\n\n".join(blocks) + "\n"
