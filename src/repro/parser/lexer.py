"""Lexer for the concrete CAR schema syntax.

The surface syntax follows the paper's notation as closely as plain text
allows.  ``not``/``and``/``or`` may be written as the unicode connectives
``¬``/``∧``/``∨``; the unbounded cardinality may be written ``inf``, ``*``
or ``∞``.  Comments run from ``--`` or ``#`` to the end of the line.
"""

from __future__ import annotations

from dataclasses import dataclass
from ..core.errors import ParseError

__all__ = ["Token", "tokenize", "KEYWORDS"]

#: Reserved words of the schema language.
KEYWORDS = frozenset({
    "class", "isa", "attributes", "participates", "in", "endclass",
    "relation", "constraints", "endrelation", "inv", "not", "and", "or",
    "inf", "top",
})

_PUNCTUATION = {
    ":": "COLON",
    ";": "SEMI",
    ",": "COMMA",
    "(": "LPAREN",
    ")": "RPAREN",
    "[": "LBRACKET",
    "]": "RBRACKET",
    "*": "STAR",
}

_UNICODE_ALIASES = {
    "¬": "not",
    "∧": "and",
    "∨": "or",
    "∞": "inf",
}


@dataclass(frozen=True, slots=True)
class Token:
    """A lexical token with its 1-based source position."""

    kind: str  # "KEYWORD" | "IDENT" | "NUM" | punctuation kind | "EOF"
    text: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.kind}({self.text!r})@{self.line}:{self.column}"


def _is_ident_start(ch: str) -> bool:
    return ch.isalpha() or ch == "_"


def _is_ident_part(ch: str) -> bool:
    return ch.isalnum() or ch == "_"


def tokenize(source: str) -> list[Token]:
    """Turn ``source`` into a token list ending with an EOF token.

    Raises :class:`ParseError` on any character outside the language.
    """
    tokens: list[Token] = []
    line, column = 1, 1
    i, n = 0, len(source)

    def advance(text: str) -> None:
        nonlocal line, column
        for ch in text:
            if ch == "\n":
                line += 1
                column = 1
            else:
                column += 1

    while i < n:
        ch = source[i]

        if ch in " \t\r\n":
            advance(ch)
            i += 1
            continue

        if ch == "#" or source.startswith("--", i):
            end = source.find("\n", i)
            end = n if end < 0 else end
            advance(source[i:end])
            i = end
            continue

        if ch in _UNICODE_ALIASES:
            tokens.append(Token("KEYWORD", _UNICODE_ALIASES[ch], line, column))
            advance(ch)
            i += 1
            continue

        if ch in _PUNCTUATION:
            tokens.append(Token(_PUNCTUATION[ch], ch, line, column))
            advance(ch)
            i += 1
            continue

        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            tokens.append(Token("NUM", source[i:j], line, column))
            advance(source[i:j])
            i = j
            continue

        if _is_ident_start(ch):
            j = i
            while j < n and _is_ident_part(source[j]):
                j += 1
            word = source[i:j]
            kind = "KEYWORD" if word in KEYWORDS else "IDENT"
            tokens.append(Token(kind, word, line, column))
            advance(word)
            i = j
            continue

        raise ParseError(f"unexpected character {ch!r}", line, column)

    tokens.append(Token("EOF", "", line, column))
    return tokens
