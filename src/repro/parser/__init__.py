"""Concrete syntax: lexer, parser, and pretty-printer for CAR schemas."""

from .lexer import Token, tokenize
from .parser import SchemaParser, parse_formula, parse_schema
from .printer import (
    render_card,
    render_class,
    render_formula,
    render_relation,
    render_schema,
)

__all__ = [
    "Token", "tokenize",
    "SchemaParser", "parse_formula", "parse_schema",
    "render_card", "render_class", "render_formula", "render_relation",
    "render_schema",
]
