"""Recursive-descent parser for the concrete CAR schema syntax.

Grammar (CNF structure of the paper, Section 2.2)::

    schema        := (class_def | relation_def)*
    class_def     := "class" IDENT
                     ["isa" formula]
                     ["attributes" attr_spec (";" attr_spec)*]
                     ["participates" "in" part_spec (";" part_spec)*]
                     "endclass" [";"]
    attr_spec     := attr_ref ":" [card] formula
    attr_ref      := IDENT | "(" "inv" IDENT ")"
    card          := "(" NUM "," (NUM | "inf" | "*") ")"
    part_spec     := IDENT "[" IDENT "]" ":" card
    relation_def  := "relation" IDENT "(" IDENT ("," IDENT)* ")"
                     ["constraints" role_clause (";" role_clause)*]
                     "endrelation" [";"]
    role_clause   := role_lit ("or" role_lit)*
    role_lit      := "(" IDENT ":" formula ")"
    formula       := clause ("and" clause)*
    clause        := atom ("or" atom)*
    atom          := ["not"] IDENT | "(" clause ")"

Cardinalities on attributes default to the unconstrained ``(0, inf)`` when
omitted, matching the plain typings of the paper's Figure 1.
"""

from __future__ import annotations

from typing import Optional

from ..core.cardinality import ANY, Card, INFINITY
from ..core.errors import ParseError
from ..core.formulas import Clause, Formula, Lit
from ..core.schema import (
    AttrRef,
    AttributeSpec,
    ClassDef,
    ParticipationSpec,
    RelationDef,
    RoleClause,
    RoleLiteral,
    Schema,
)
from .lexer import Token, tokenize

__all__ = ["parse_schema", "parse_formula", "SchemaParser"]


class SchemaParser:
    """Stateful recursive-descent parser over a token list."""

    def __init__(self, source: str):
        self._tokens = tokenize(source)
        self._pos = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _next(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind != "EOF":
            self._pos += 1
        return token

    def _at_keyword(self, word: str) -> bool:
        token = self._peek()
        return token.kind == "KEYWORD" and token.text == word

    def _eat_keyword(self, word: str) -> Token:
        token = self._peek()
        if not self._at_keyword(word):
            raise ParseError(f"expected {word!r}, found {token.text!r}",
                             token.line, token.column)
        return self._next()

    def _eat(self, kind: str) -> Token:
        token = self._peek()
        if token.kind != kind:
            raise ParseError(f"expected {kind}, found {token.text!r}",
                             token.line, token.column)
        return self._next()

    def _eat_ident(self, what: str) -> str:
        token = self._peek()
        if token.kind != "IDENT":
            raise ParseError(f"expected {what}, found {token.text!r}",
                             token.line, token.column)
        return self._next().text

    def _eat_role_name(self) -> str:
        """Role names additionally admit the keyword ``in`` — the paper's
        ternary ``Exam(of, by, in)`` uses it as a role symbol."""
        token = self._peek()
        if token.kind == "KEYWORD" and token.text == "in":
            return self._next().text
        return self._eat_ident("role name")

    def _skip_semi(self) -> None:
        if self._peek().kind == "SEMI":
            self._next()

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def parse_schema(self) -> Schema:
        classes: list[ClassDef] = []
        relations: list[RelationDef] = []
        while True:
            token = self._peek()
            if token.kind == "EOF":
                break
            if self._at_keyword("class"):
                classes.append(self._parse_class())
            elif self._at_keyword("relation"):
                relations.append(self._parse_relation())
            else:
                raise ParseError(
                    f"expected 'class' or 'relation', found {token.text!r}",
                    token.line, token.column,
                )
        return Schema(classes, relations)

    # ------------------------------------------------------------------
    # Class definitions
    # ------------------------------------------------------------------
    def _parse_class(self) -> ClassDef:
        self._eat_keyword("class")
        name = self._eat_ident("class name")
        isa = Formula(())
        attributes: list[AttributeSpec] = []
        participates: list[ParticipationSpec] = []

        if self._at_keyword("isa"):
            self._next()
            isa = self._parse_formula()
        if self._at_keyword("attributes"):
            self._next()
            attributes.append(self._parse_attr_spec())
            while self._peek().kind == "SEMI":
                self._next()
                if self._at_keyword("participates") or self._at_keyword("endclass"):
                    break
                attributes.append(self._parse_attr_spec())
        if self._at_keyword("participates"):
            self._next()
            self._eat_keyword("in")
            participates.append(self._parse_part_spec())
            while self._peek().kind == "SEMI":
                self._next()
                if self._at_keyword("endclass"):
                    break
                participates.append(self._parse_part_spec())
        self._eat_keyword("endclass")
        self._skip_semi()
        return ClassDef(name, isa, attributes, participates)

    def _parse_attr_spec(self) -> AttributeSpec:
        ref = self._parse_attr_ref()
        self._eat("COLON")
        card = self._try_parse_card()
        filler = self._parse_formula()
        return AttributeSpec(ref, card if card is not None else ANY, filler)

    def _parse_attr_ref(self) -> AttrRef:
        if self._peek().kind == "LPAREN":
            self._next()
            self._eat_keyword("inv")
            name = self._eat_ident("attribute name")
            self._eat("RPAREN")
            return AttrRef(name, inverse=True)
        return AttrRef(self._eat_ident("attribute name"))

    def _try_parse_card(self) -> Optional[Card]:
        """Parse ``( NUM , NUM|inf|* )`` if present; attribute fillers may also
        start with ``(`` (a parenthesized clause), so look ahead one token."""
        if self._peek().kind != "LPAREN":
            return None
        after = self._tokens[self._pos + 1]
        if after.kind != "NUM":
            return None
        self._next()  # LPAREN
        lower = int(self._next().text)
        self._eat("COMMA")
        token = self._next()
        if token.kind == "NUM":
            upper: int | None = int(token.text)
        elif token.kind == "STAR" or (token.kind == "KEYWORD" and token.text == "inf"):
            upper = INFINITY
        else:
            raise ParseError(f"expected cardinality upper bound, found {token.text!r}",
                             token.line, token.column)
        self._eat("RPAREN")
        return Card(lower, upper)

    def _parse_part_spec(self) -> ParticipationSpec:
        relation = self._eat_ident("relation name")
        self._eat("LBRACKET")
        role = self._eat_role_name()
        self._eat("RBRACKET")
        self._eat("COLON")
        card = self._try_parse_card()
        if card is None:
            token = self._peek()
            raise ParseError("participation requires an explicit cardinality",
                             token.line, token.column)
        return ParticipationSpec(relation, role, card)

    # ------------------------------------------------------------------
    # Relation definitions
    # ------------------------------------------------------------------
    def _parse_relation(self) -> RelationDef:
        self._eat_keyword("relation")
        name = self._eat_ident("relation name")
        self._eat("LPAREN")
        roles = [self._eat_role_name()]
        while self._peek().kind == "COMMA":
            self._next()
            roles.append(self._eat_role_name())
        self._eat("RPAREN")
        constraints: list[RoleClause] = []
        if self._at_keyword("constraints"):
            self._next()
            constraints.append(self._parse_role_clause())
            while self._peek().kind == "SEMI":
                self._next()
                if self._at_keyword("endrelation"):
                    break
                constraints.append(self._parse_role_clause())
        self._eat_keyword("endrelation")
        self._skip_semi()
        return RelationDef(name, roles, constraints)

    def _parse_role_clause(self) -> RoleClause:
        literals = [self._parse_role_literal()]
        while self._at_keyword("or"):
            self._next()
            literals.append(self._parse_role_literal())
        return RoleClause(*literals)

    def _parse_role_literal(self) -> RoleLiteral:
        self._eat("LPAREN")
        role = self._eat_role_name()
        self._eat("COLON")
        formula = self._parse_formula()
        self._eat("RPAREN")
        return RoleLiteral(role, formula)

    # ------------------------------------------------------------------
    # Formulae
    # ------------------------------------------------------------------
    def _parse_formula(self) -> Formula:
        if self._at_keyword("top"):
            self._next()
            return Formula(())
        clauses = [self._parse_clause()]
        while self._at_keyword("and"):
            self._next()
            clauses.append(self._parse_clause())
        return Formula(tuple(clauses))

    def _parse_clause(self) -> Clause:
        literals = list(self._parse_atom())
        while self._at_keyword("or"):
            self._next()
            literals.extend(self._parse_atom())
        return Clause(tuple(literals))

    def _parse_atom(self) -> tuple[Lit, ...]:
        token = self._peek()
        if token.kind == "LPAREN":
            self._next()
            clause = self._parse_clause()
            self._eat("RPAREN")
            return clause.literals
        if self._at_keyword("not"):
            self._next()
            return (Lit(self._eat_ident("class name"), positive=False),)
        return (Lit(self._eat_ident("class name")),)

    def expect_eof(self) -> None:
        token = self._peek()
        if token.kind != "EOF":
            raise ParseError(f"unexpected trailing input {token.text!r}",
                             token.line, token.column)


def parse_schema(source: str) -> Schema:
    """Parse a complete schema from concrete syntax."""
    parser = SchemaParser(source)
    schema = parser.parse_schema()
    parser.expect_eof()
    return schema


def parse_formula(source: str) -> Formula:
    """Parse a standalone class-formula (handy in queries and tests)."""
    parser = SchemaParser(source)
    formula = parser._parse_formula()
    parser.expect_eof()
    return formula
