"""Observability: structured tracing, metrics, and profiling hooks.

The two-phase decision procedure has sharply different cost profiles per
stage — exponential compound-class enumeration versus LP solving — so
knowing *where* time and space go per query is a prerequisite for any
further scaling work.  This package is the cross-cutting layer that
answers that question:

* :class:`~repro.obs.tracer.Tracer` — a lightweight event/metric bus with
  **span contexts** (monotonic wall-clock intervals, nested), **counters**
  (monotone accumulators: compound classes enumerated, candidates pruned,
  memo hits, LP pivots, fallbacks), and **gauges** (last-value samples:
  cache occupancy);
* :data:`~repro.obs.tracer.NULL_TRACER` — the disabled bus.  Every
  instrumented call site accepts a tracer and defaults to this no-op
  singleton, so the hot path pays a single dynamic dispatch per *batch* of
  events (instrumented loops count locally and report once);
* an **ambient tracer** (:func:`~repro.obs.tracer.use_tracer` /
  :func:`~repro.obs.tracer.current_tracer`) so drivers like the benchmark
  runner can profile whole workloads without threading a tracer through
  every constructor;
* a **versioned JSON-lines trace format**
  (:data:`~repro.obs.tracer.TRACE_SCHEMA_VERSION`) consumed by the CLI's
  ``--trace-out`` flag and the benchmark recorder.

Wiring: :class:`~repro.engine.pipeline.Pipeline` opens one span per stage,
the expansion builder and the DPLL enumeration report pruning/memo
counters, the LP backends report pivot/fallback/degeneracy metrics, and
:class:`~repro.engine.session.SchemaSession` reports cache hit/miss/
eviction gauges.  ``EngineConfig(trace=...)`` switches it all on.
"""

from .tracer import (
    NULL_TRACER,
    NullTracer,
    SpanRecord,
    TRACE_SCHEMA_VERSION,
    Tracer,
    as_tracer,
    current_tracer,
    use_tracer,
)

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "SpanRecord",
    "as_tracer",
    "current_tracer",
    "use_tracer",
]
