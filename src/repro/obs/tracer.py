"""The event/metric bus: spans, counters, gauges, and the trace format.

Design constraints, in order:

1. **Near-zero cost when disabled.**  Instrumented call sites take a
   ``tracer`` argument defaulting to :data:`NULL_TRACER`, whose methods are
   empty and whose ``span()`` returns one reusable no-op context manager —
   no allocation, no clock read.  Hot loops accumulate plain local
   integers and report them with a single ``add()`` call at the end, so
   the disabled path pays one no-op method call per loop, not per
   iteration.
2. **One bus, many layers.**  The same :class:`Tracer` instance travels
   through pipeline, expansion, LP, and session code; event names are
   dotted paths (``pipeline.expansion``, ``lp.pivots``,
   ``session.cache_hits``) so a trace reads as a flat, greppable stream.
3. **A versioned, line-oriented export.**  :meth:`Tracer.jsonl_lines`
   renders the trace as JSON lines — a header line carrying
   :data:`TRACE_SCHEMA_VERSION`, then one line per span in completion
   order, then one line per counter and gauge.  Consumers (CI artifacts,
   the benchmark recorder) key on ``type`` and ignore unknown fields,
   which is the compatibility contract the snapshot test pins.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import IO, Iterator, Optional, Union

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "SpanRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "as_tracer",
    "current_tracer",
    "use_tracer",
]

#: Version of the JSON-lines trace document format.  Bump on any change to
#: the line shapes below; consumers match on it via the header line.
TRACE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class SpanRecord:
    """One completed span: a named monotonic wall-clock interval.

    ``start`` is seconds since the tracer's epoch (its construction, on the
    monotonic clock), so spans of one trace are mutually comparable but
    carry no absolute timestamps.  ``parent`` names the innermost span open
    when this one started (None at top level).
    """

    name: str
    start: float
    duration: float
    parent: Optional[str] = None

    def as_json(self) -> dict:
        return {
            "type": "span",
            "name": self.name,
            "start_s": round(self.start, 9),
            "duration_s": round(self.duration, 9),
            "parent": self.parent,
        }


class Tracer:
    """The enabled event/metric bus.

    Spans record wall-clock intervals on the monotonic clock; counters
    accumulate (``add``); gauges keep the last sampled value (``gauge``).
    A tracer is append-only during a run; :meth:`clear` resets it between
    runs (the benchmark driver does this per section).

    One tracer may be shared by many threads (the query service's
    ``ThreadingHTTPServer`` funnels every request thread into the session
    bus): the open-span stack is thread-local so parent attribution never
    crosses threads, and counter increments — a read-modify-write — are
    guarded by a lock.  Span/gauge recording relies on the atomicity of
    ``list.append`` and ``dict.__setitem__``.
    """

    __slots__ = ("_epoch", "spans", "counters", "gauges", "_local", "_lock")

    enabled = True

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self.spans: list[SpanRecord] = []
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self._local = threading.local()
        self._lock = threading.Lock()

    @property
    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Record a named wall-clock interval around the ``with`` body."""
        stack = self._stack
        parent = stack[-1] if stack else None
        stack.append(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - start
            stack.pop()
            self.spans.append(SpanRecord(
                name, start - self._epoch, duration, parent))

    def add(self, name: str, amount: int = 1) -> None:
        """Accumulate ``amount`` into counter ``name``."""
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Sample gauge ``name`` (last value wins)."""
        self.gauges[name] = value

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter(self, name: str) -> int:
        """Current value of counter ``name`` (0 when never incremented)."""
        return self.counters.get(name, 0)

    def span_seconds(self, name: str) -> float:
        """Total duration of all completed spans named ``name``."""
        return sum(s.duration for s in self.spans if s.name == name)

    def span_count(self, name: str) -> int:
        """How many completed spans are named ``name``."""
        return sum(1 for s in self.spans if s.name == name)

    def snapshot(self) -> dict:
        """A plain-dict rendering of the whole trace (JSON-able)."""
        return {
            "trace_schema": TRACE_SCHEMA_VERSION,
            "spans": [record.as_json() for record in self.spans],
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
        }

    def clear(self) -> None:
        """Drop all recorded events (open spans keep nesting correctly)."""
        self.spans.clear()
        self.counters.clear()
        self.gauges.clear()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def jsonl_lines(self) -> list[str]:
        """The versioned JSON-lines rendering: header, spans, counters,
        gauges — one JSON document per line."""
        lines = [json.dumps({"type": "header",
                             "trace_schema": TRACE_SCHEMA_VERSION,
                             "generator": "repro"}, sort_keys=True)]
        for record in self.spans:
            lines.append(json.dumps(record.as_json(), sort_keys=True))
        for name, value in sorted(self.counters.items()):
            lines.append(json.dumps(
                {"type": "counter", "name": name, "value": value},
                sort_keys=True))
        for name, value in sorted(self.gauges.items()):
            lines.append(json.dumps(
                {"type": "gauge", "name": name, "value": value},
                sort_keys=True))
        return lines

    def write_jsonl(self, target: Union[str, IO[str]]) -> None:
        """Write the JSON-lines trace to a path or an open text stream."""
        text = "\n".join(self.jsonl_lines()) + "\n"
        if hasattr(target, "write"):
            target.write(text)
        else:
            with open(target, "w", encoding="utf-8") as handle:
                handle.write(text)


class _NullSpan:
    """The reusable no-op span context (no allocation per use)."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled bus: every method is a no-op.

    A single module-level instance (:data:`NULL_TRACER`) is the default of
    every instrumented call site; ``tracer.enabled`` lets expensive
    *event preparation* (string formatting, snapshotting) be skipped
    entirely, not just the recording.
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def add(self, name: str, amount: int = 1) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def counter(self, name: str) -> int:
        return 0

    def span_seconds(self, name: str) -> float:
        return 0.0

    def span_count(self, name: str) -> int:
        return 0

    def snapshot(self) -> dict:
        return {"trace_schema": TRACE_SCHEMA_VERSION, "spans": [],
                "counters": {}, "gauges": {}}

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()

#: The ambient tracer: a context-scoped default so whole-process drivers
#: (the benchmark runner, ad-hoc profiling) can enable tracing without
#: threading a tracer through every constructor.
_CURRENT: ContextVar[Union[Tracer, NullTracer]] = ContextVar(
    "repro_tracer", default=NULL_TRACER)


def current_tracer() -> Union[Tracer, NullTracer]:
    """The ambient tracer (``NULL_TRACER`` unless :func:`use_tracer` is
    active on the current context)."""
    return _CURRENT.get()


@contextmanager
def use_tracer(tracer: Union[Tracer, NullTracer]) -> Iterator[None]:
    """Install ``tracer`` as the ambient tracer for the ``with`` body."""
    token = _CURRENT.set(tracer)
    try:
        yield
    finally:
        _CURRENT.reset(token)


def as_tracer(trace: Union[bool, Tracer, NullTracer, None]
              ) -> Union[Tracer, NullTracer]:
    """Resolve an ``EngineConfig.trace`` value to a tracer instance.

    ``False``/``None`` → the ambient tracer (usually :data:`NULL_TRACER`);
    ``True`` → a fresh :class:`Tracer`; a tracer instance passes through
    (the shared-bus case: one tracer across sessions and pipelines).
    """
    if trace is None or trace is False:
        return current_tracer()
    if trace is True:
        return Tracer()
    return trace
