"""Experiment "Theorem 4.3": the linear phase is polynomial in |Ψ_S|.

We hold the per-cluster structure fixed and add clusters, so the expansion
— and with it the disequation system — grows *linearly* while remaining
nontrivial (every cluster carries exact-cardinality attribute constraints).
Theorem 4.3 predicts the acceptable-solution check stays polynomial in the
system size; the measured times must stay under a quadratic envelope.
"""

import pytest

from benchlib import is_subquadratic, render_table, timed
from repro.core.cardinality import Card
from repro.core.formulas import Lit
from repro.core.schema import Attr, ClassDef, Schema, inv
from repro.expansion.expansion import build_expansion
from repro.linear.support import acceptable_support
from repro.linear.system import build_system


def ratio_cluster(index: int, fan: int) -> list[ClassDef]:
    """One cluster: |B| = fan · |A| via exact cardinalities."""
    a, b = f"A{index}", f"B{index}"
    return [
        ClassDef(a, isa=~Lit(b),
                 attributes=[Attr(f"link{index}", Card(fan, fan), b)]),
        ClassDef(b, attributes=[Attr(inv(f"link{index}"), Card(1, 1), a)]),
    ]


def schema_with_clusters(n: int) -> Schema:
    classes = []
    for i in range(n):
        classes.extend(ratio_cluster(i, fan=2 + (i % 3)))
    return Schema(classes)


@pytest.mark.experiment("theorem43")
def test_lp_phase_polynomial_in_system_size(benchmark):
    def measure():
        rows = []
        for n_clusters in (2, 4, 8, 16):
            schema = schema_with_clusters(n_clusters)
            system = build_system(build_expansion(schema))
            seconds, result = timed(lambda s=system: acceptable_support(s))
            assert result.support  # every cluster is satisfiable
            rows.append((n_clusters, system.size(), system.n_unknowns(),
                         system.n_constraints(), seconds))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(render_table(
        "Theorem 4.3 — acceptable-solution check vs |Psi_S|",
        ["clusters", "|Psi_S|", "unknowns", "disequations", "seconds"], rows))

    sizes = [float(r[1]) for r in rows]
    times = [max(r[4], 1e-5) for r in rows]
    assert is_subquadratic(sizes, times, slack=4.0), (
        "linear-phase time must stay polynomial (quadratic envelope) "
        f"in |Psi_S|: sizes {sizes}, times {times}")


@pytest.mark.experiment("theorem43")
def test_lp_phase_single_system(benchmark):
    """Timed: one mid-sized support computation in isolation."""
    system = build_system(build_expansion(schema_with_clusters(8)))
    result = benchmark(lambda: acceptable_support(system))
    assert result.support


@pytest.mark.experiment("theorem43")
def test_integrality_of_witnesses(benchmark):
    """Theorem 4.3's integrality half: rational witnesses scale to integer
    acceptable solutions; verify the scaled witness against Ψ_S exactly."""
    from fractions import Fraction

    system = build_system(build_expansion(schema_with_clusters(4)))

    def check():
        result = acceptable_support(system)
        witness = result.integer_solution(scale=2)
        for constraint in system.constraints:
            total = sum((coeff * witness[var]
                         for var, coeff in constraint.coefficients),
                        Fraction(0))
            assert total <= 0, constraint.origin
        return witness

    witness = benchmark(check)
    assert any(value > 0 for value in witness.values())
