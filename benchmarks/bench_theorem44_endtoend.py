"""Experiment "Theorem 4.4": the whole decision procedure, worst-case
exponential.

On adversarial single-cluster, union-rich schemas (category (α) of Section
4.3) the number of consistent compound classes is genuinely exponential in
the class count, so end-to-end class satisfiability must show exponential
growth — the upper-bound side of the paper's EXPTIME characterization.
"""

import pytest

from benchlib import growth_ratios, is_superlinear, render_table, timed
from repro import Reasoner
from repro.workloads.generators import adversarial_schema


@pytest.mark.experiment("theorem44")
def test_exponential_growth_on_adversarial_schemas(benchmark):
    def measure():
        rows = []
        for n_classes in (6, 8, 10, 12):
            schema = adversarial_schema(n_classes, seed=4)
            reasoner = Reasoner(schema)
            seconds, _ = timed(lambda r=reasoner: r.satisfiable_classes())
            stats = reasoner.stats()
            rows.append((n_classes, stats.compound_classes,
                         stats.expansion_size, seconds))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(render_table(
        "Theorem 4.4 — adversarial single-cluster schemas",
        ["classes", "compound classes", "expansion", "seconds"], rows))

    classes = [float(r[0]) for r in rows]
    compounds = [float(r[1]) for r in rows]
    assert is_superlinear(classes, compounds, factor=2.0)
    # Exponential signature: the growth ratio does not die down.
    ratios = growth_ratios(compounds)
    assert ratios[-1] > 1.5


@pytest.mark.experiment("theorem44")
def test_end_to_end_single_adversarial(benchmark):
    schema = adversarial_schema(9, seed=4)

    def run():
        return Reasoner(schema).satisfiable_classes()

    names = benchmark(run)
    assert names  # adversarial schemas are satisfiable, just expensive
