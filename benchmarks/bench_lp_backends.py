"""Experiment "LP backends": the sparse fraction-free core vs the dense one.

Ψ_S is extremely sparse — every disequation couples one compound-class
column to its entry's summands — so the dense all-``Fraction`` tableau
(backend ``"exact"``) pays for a rectangle of zeros on every pivot.  The
sparse fraction-free simplex (backend ``"exact-sparse"``) touches only
nonzeros and keeps integer rows, and must therefore beat the dense core by
a widening margin as |Ψ_S| grows, while producing **identical** support
sets (the maximal acceptable support is unique).

Two bars are asserted here and re-checked in CI:

* the sparse backend is ≥3x faster than the dense exact backend on the
  largest row both can afford in CI time (the committed ``BENCH_lp.json``
  records the full table, including the 10x-scaled row at 320 clusters);
* hierarchy-flagged systems answer through the Section 4.4 closed form
  with **zero** simplex pivots.
"""

import pytest

from benchlib import is_subquadratic, render_table, timed
from repro.core.cardinality import Card
from repro.core.formulas import Lit
from repro.core.schema import Attr, ClassDef, Schema, inv
from repro.expansion.expansion import build_expansion
from repro.linear.backends import SparseExactBackend
from repro.linear.support import acceptable_support
from repro.linear.system import build_system
from repro.obs.tracer import Tracer
from repro.workloads.generators import hierarchy_schema

#: The sparse backend must beat the dense exact backend by at least this
#: factor on the comparison row — the CI speedup bar (measured margins are
#: two orders of magnitude; 3x keeps the bar robust on noisy runners).
SPEEDUP_BAR = 3.0

#: Largest cluster count the *dense* backend can afford inside CI time.
DENSE_COMPARISON_CLUSTERS = 64

#: The 10x-scaled row (today's largest committed series stops at 32
#: clusters); asserted sparse-only in CI, dense-vs-sparse in BENCH_lp.json.
SCALED_CLUSTERS = 320


def ratio_cluster(index: int, fan: int) -> list[ClassDef]:
    """One cluster: |B| = fan · |A| via exact cardinalities."""
    a, b = f"A{index}", f"B{index}"
    return [
        ClassDef(a, isa=~Lit(b),
                 attributes=[Attr(f"link{index}", Card(fan, fan), b)]),
        ClassDef(b, attributes=[Attr(inv(f"link{index}"), Card(1, 1), a)]),
    ]


def schema_with_clusters(n: int) -> Schema:
    classes = []
    for i in range(n):
        classes.extend(ratio_cluster(i, fan=2 + (i % 3)))
    return Schema(classes)


@pytest.mark.experiment("lp-backends")
def test_sparse_beats_dense_exact(benchmark):
    """Identical verdicts, ≥3x wall-clock on the comparison row."""
    system = build_system(build_expansion(
        schema_with_clusters(DENSE_COMPARISON_CLUSTERS)))

    def measure():
        sparse_s, sparse = timed(
            lambda: acceptable_support(system, backend="exact-sparse"))
        dense_s, dense = timed(
            lambda: acceptable_support(system, backend="exact"))
        return sparse_s, dense_s, sparse, dense

    sparse_s, dense_s, sparse, dense = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    print()
    print(render_table(
        "LP backends — dense vs sparse exact "
        f"({DENSE_COMPARISON_CLUSTERS} clusters, |Psi_S|={system.size()})",
        ["backend", "seconds"],
        [("exact", dense_s), ("exact-sparse", sparse_s)]))

    assert sparse.support == dense.support
    assert dense_s >= SPEEDUP_BAR * sparse_s, (
        f"sparse backend must be at least {SPEEDUP_BAR}x faster than the "
        f"dense core: dense {dense_s:.3f}s vs sparse {sparse_s:.3f}s")


@pytest.mark.experiment("lp-backends")
def test_sparse_scales_to_the_10x_row(benchmark):
    """The 10x-scaled Ψ_S row stays polynomial for the sparse core."""
    def measure():
        rows = []
        for n_clusters in (32, 96, SCALED_CLUSTERS):
            system = build_system(build_expansion(
                schema_with_clusters(n_clusters)))
            seconds, result = timed(
                lambda s=system: acceptable_support(s, backend="exact-sparse"))
            assert result.support  # every cluster is satisfiable
            rows.append((n_clusters, system.size(), seconds))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(render_table(
        "LP backends — sparse exact on the 10x-scaled series",
        ["clusters", "|Psi_S|", "seconds"], rows))
    sizes = [float(r[1]) for r in rows]
    times = [max(r[2], 1e-5) for r in rows]
    assert is_subquadratic(sizes, times, slack=4.0), (
        "sparse LP time must stay under the quadratic envelope "
        f"{list(zip(sizes, times))}")


@pytest.mark.experiment("lp-backends")
def test_hierarchy_closed_form_has_zero_pivots(benchmark):
    """§4.4: hierarchy-flagged systems skip the simplex entirely."""
    system = build_system(build_expansion(
        hierarchy_schema(4, 3, with_attributes=True, seed=9)))
    active = list(range(system.n_unknowns()))

    def closed_form():
        tracer = Tracer()
        result = acceptable_support(system, backend="exact-sparse",
                                    hierarchy=True, tracer=tracer)
        return result, dict(tracer.counters)

    (result, counters) = benchmark.pedantic(closed_form, rounds=1,
                                            iterations=1)
    lp_s, lp_result = timed(
        lambda: SparseExactBackend().solve(system, active))
    closed_s, _ = timed(lambda: SparseExactBackend().solve(
        system, sorted(result.support), hierarchy=True))
    print()
    print(render_table(
        f"Section 4.4 closed form vs sparse LP (|Psi_S|={system.size()})",
        ["path", "seconds", "pivots"],
        [("sparse LP", lp_s, lp_result.metrics.get("lp.pivots", 0)),
         ("closed form", closed_s, 0)]))

    assert result.backend_used == "closed-form"
    assert counters.get("lp.hierarchy_closed_form", 0) >= 1
    assert counters.get("lp.pivots", 0) == 0
    plain = acceptable_support(system, backend="exact-sparse")
    assert result.support == plain.support
