"""Shared helpers for the benchmark suite.

Every benchmark regenerates one row-series of the paper's evaluation (which,
for a 1994 PODS theory paper, means the *scaling shapes* its theorems
assert).  The helpers here time pipeline stages, compute growth ratios, and
render small aligned tables so the series can be eyeballed in the pytest
output and transcribed into EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import os
import platform
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Sequence

__all__ = ["timed", "best_of", "growth_ratios", "is_superlinear",
           "is_subquadratic", "render_table", "Series", "Recorder"]


def timed(fn: Callable[[], object]) -> tuple[float, object]:
    """Wall-clock one call; returns (seconds, result)."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def best_of(fn: Callable[[], object], rounds: int = 3) -> float:
    """Minimum wall-clock over ``rounds`` calls — the noise-robust timing
    for speedup assertions."""
    return min(timed(fn)[0] for _ in range(rounds))


@dataclass
class Series:
    """One measured scaling series: parameter values and measurements."""

    name: str
    xs: list
    ys: list[float]

    def ratios(self) -> list[float]:
        return growth_ratios(self.ys)


def growth_ratios(values: Sequence[float]) -> list[float]:
    """Successive ratios ``y[i+1] / y[i]`` (0 when the denominator is 0)."""
    out = []
    for a, b in zip(values, values[1:]):
        out.append(b / a if a else 0.0)
    return out


def is_superlinear(xs: Sequence[float], ys: Sequence[float],
                   factor: float = 1.2) -> bool:
    """True when ``ys`` grows clearly faster than ``xs`` overall.

    Compares total growth: ``y_n/y_0`` must exceed ``factor · x_n/x_0``.
    Robust to per-step noise, strict enough for exponential-vs-linear.
    """
    if ys[0] <= 0 or xs[0] <= 0:
        return True
    return (ys[-1] / ys[0]) > factor * (xs[-1] / xs[0])


def is_subquadratic(xs: Sequence[float], ys: Sequence[float],
                    slack: float = 1.5) -> bool:
    """True when total growth of ``ys`` stays below ``slack · (x ratio)^2``.

    Used to certify the polynomial special cases: their measured growth must
    stay well under the quadratic envelope (noise-tolerant via ``slack``).
    """
    if ys[0] <= 0 or xs[0] <= 0:
        return True
    return (ys[-1] / ys[0]) < slack * (xs[-1] / xs[0]) ** 2


def _jsonable(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class Recorder:
    """Collects every table a benchmark run prints into a JSON document.

    ``run_experiments.py --json PATH`` threads one instance through its
    sections; each rendered table is also recorded structurally, so CI and
    regression tooling can diff ``BENCH_<name>.json`` files instead of
    scraping stdout.  The document shape::

        {"command": "...", "python": "3.x.y", "platform": "...",
         "cpu_count": N,
         "sections": [{"title": ...,
                       "tables": [{"title": ..., "headers": [...],
                                   "rows": [[...], ...]}]}]}

    ``cpu_count`` stamps the host parallelism into every document, so a
    parallel-speedup table measured on a 1-core box can never again be
    mistaken for a regression.
    """

    def __init__(self, command: str = ""):
        self.command = command
        self._sections: list[dict] = []
        self._current: dict | None = None

    def start_section(self, title: str) -> None:
        self._current = {"title": title, "tables": []}
        self._sections.append(self._current)

    def record(self, title: str, headers: Sequence[str],
               rows: Sequence[Sequence]) -> None:
        if self._current is None:
            self.start_section("(untitled)")
        self._current["tables"].append({
            "title": title,
            "headers": [str(h) for h in headers],
            "rows": [[_jsonable(v) for v in row] for row in rows],
        })

    def record_trace(self, snapshot: dict) -> None:
        """Attach an observability snapshot (``Tracer.snapshot()``) to the
        current section as a per-stage breakdown: total seconds and span
        counts per span name, plus the counters and gauges verbatim."""
        if self._current is None:
            self.start_section("(untitled)")
        seconds: dict[str, float] = {}
        counts: dict[str, int] = {}
        for span in snapshot.get("spans", ()):
            name = span["name"]
            seconds[name] = seconds.get(name, 0.0) + span["duration_s"]
            counts[name] = counts.get(name, 0) + 1
        self._current["trace"] = {
            "trace_schema": snapshot.get("trace_schema"),
            "span_seconds": {k: seconds[k] for k in sorted(seconds)},
            "span_counts": {k: counts[k] for k in sorted(counts)},
            "counters": dict(snapshot.get("counters", {})),
            "gauges": dict(snapshot.get("gauges", {})),
        }

    def document(self) -> dict:
        return {
            "command": self.command,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "cpu_count": os.cpu_count(),
            "sections": self._sections,
        }

    def dump(self, path: str | Path) -> None:
        Path(path).write_text(
            json.dumps(self.document(), indent=2) + "\n", encoding="utf-8")


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence]) -> str:
    """A small fixed-width table, printed into the benchmark log."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([f"{v:.4g}" if isinstance(v, float) else str(v)
                      for v in row])
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = [title]
    for i, row in enumerate(cells):
        lines.append("  " + "  ".join(v.rjust(w) for v, w in zip(row, widths)))
        if i == 0:
            lines.append("  " + "  ".join("-" * w for w in widths))
    return "\n".join(lines)
