"""Shared helpers for the benchmark suite.

Every benchmark regenerates one row-series of the paper's evaluation (which,
for a 1994 PODS theory paper, means the *scaling shapes* its theorems
assert).  The helpers here time pipeline stages, compute growth ratios, and
render small aligned tables so the series can be eyeballed in the pytest
output and transcribed into EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = ["timed", "growth_ratios", "is_superlinear", "is_subquadratic",
           "render_table", "Series"]


def timed(fn: Callable[[], object]) -> tuple[float, object]:
    """Wall-clock one call; returns (seconds, result)."""
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


@dataclass
class Series:
    """One measured scaling series: parameter values and measurements."""

    name: str
    xs: list
    ys: list[float]

    def ratios(self) -> list[float]:
        return growth_ratios(self.ys)


def growth_ratios(values: Sequence[float]) -> list[float]:
    """Successive ratios ``y[i+1] / y[i]`` (0 when the denominator is 0)."""
    out = []
    for a, b in zip(values, values[1:]):
        out.append(b / a if a else 0.0)
    return out


def is_superlinear(xs: Sequence[float], ys: Sequence[float],
                   factor: float = 1.2) -> bool:
    """True when ``ys`` grows clearly faster than ``xs`` overall.

    Compares total growth: ``y_n/y_0`` must exceed ``factor · x_n/x_0``.
    Robust to per-step noise, strict enough for exponential-vs-linear.
    """
    if ys[0] <= 0 or xs[0] <= 0:
        return True
    return (ys[-1] / ys[0]) > factor * (xs[-1] / xs[0])


def is_subquadratic(xs: Sequence[float], ys: Sequence[float],
                    slack: float = 1.5) -> bool:
    """True when total growth of ``ys`` stays below ``slack · (x ratio)^2``.

    Used to certify the polynomial special cases: their measured growth must
    stay well under the quadratic envelope (noise-tolerant via ``slack``).
    """
    if ys[0] <= 0 or xs[0] <= 0:
        return True
    return (ys[-1] / ys[0]) < slack * (xs[-1] / xs[0]) ** 2


def render_table(title: str, headers: Sequence[str],
                 rows: Sequence[Sequence]) -> str:
    """A small fixed-width table, printed into the benchmark log."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([f"{v:.4g}" if isinstance(v, float) else str(v)
                      for v in row])
    widths = [max(len(r[c]) for r in cells) for c in range(len(headers))]
    lines = [title]
    for i, row in enumerate(cells):
        lines.append("  " + "  ".join(v.rjust(w) for v, w in zip(row, widths)))
        if i == 0:
            lines.append("  " + "  ".join("-" * w for w in widths))
    return "\n".join(lines)
