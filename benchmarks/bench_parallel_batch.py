"""Experiment "parallel batch": the executor must buy real wall-clock.

Three acceptance bars for the batch executor and its warm-start path:

* **Speedup** — a batch of independent schemas answered with 4 process
  workers beats serial ``check_many`` by >= 2x.  Process workers are
  real parallelism only when the host has the cores: the assertion is
  gated on ``os.cpu_count() >= 4``, and on a single-core host the whole
  measurement is skipped rather than recorded — a sub-1x row measured
  where no parallelism exists reads like an executor regression.
* **Cold start** — rehydrating a precompiled
  :class:`~repro.engine.artifact.CompiledSchema` must be >= 5x faster
  than the full Phase-1/Phase-2 build it replaces.  This is the saving
  every artifact hit banks (pool worker, CLI rerun, service boot), and
  it holds on any host regardless of core count.
* **Responsiveness** — a 50 ms deadline against a Theorem 4.1
  EXPTIME-hard reduction schema comes back as a timed-out
  :class:`~repro.engine.executor.QueryOutcome` in under a second, and
  does not take its batch down with it.
"""

import os
import pickle
import time

import pytest

from benchlib import best_of, render_table
from repro.engine import EngineConfig, Pipeline, SchemaSession
from repro.engine.artifact import _loads_without_gc
from repro.parser.printer import render_schema
from repro.reductions import machine_to_schema, parity_machine
from repro.workloads.generators import adversarial_schema

#: Batch shape: one shard per schema, every schema independent work.
N_SCHEMAS = 8
ADVERSARIAL_SIZE = 16
SPEEDUP_JOBS = 4
SPEEDUP_BAR = 2.0
#: Artifact rehydration must beat the full Phase-1/2 build by this much.
COLD_START_BAR = 5.0


def _batch(size: int = ADVERSARIAL_SIZE):
    queries = []
    for index in range(N_SCHEMAS):
        schema = adversarial_schema(size, seed=index)
        name = sorted(schema.class_symbols)[0]
        queries.append({"schema": render_schema(schema), "formula": name})
    return queries


def _warm_interpreter():
    """One small end-to-end run before timing anything.

    The first pipeline execution in a fresh interpreter pays one-time
    costs (bytecode specialization, module-level lazy imports) an order of
    magnitude above the steady state; forked workers inherit the warmed
    state, so timing a cold serial run against warm workers would
    overstate the speedup wildly.
    """
    session = SchemaSession()
    session.run_batch(_batch(size=9), jobs=1, mode="serial")
    session.close()


def _run(queries, jobs: int, mode: str):
    session = SchemaSession()
    try:
        start = time.perf_counter()
        outcomes = session.run_batch(queries, jobs=jobs, mode=mode)
        return time.perf_counter() - start, outcomes
    finally:
        session.close()


@pytest.mark.experiment("parallel_batch")
def test_parallel_speedup_over_serial(benchmark):
    cores = os.cpu_count() or 1
    if cores < 2:
        pytest.skip(f"{cores}-core host: a process pool has no parallelism "
                    f"to measure, only fork/pickle overhead")
    queries = _batch()

    def measure():
        _warm_interpreter()
        serial_s, serial = _run(queries, jobs=1, mode="serial")
        parallel_s, parallel = _run(queries, jobs=SPEEDUP_JOBS,
                                    mode="process")
        return serial_s, serial, parallel_s, parallel

    serial_s, serial, parallel_s, parallel = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    speedup = serial_s / parallel_s
    print()
    print(render_table(
        f"parallel batch — {N_SCHEMAS} adversarial schemas, "
        f"{SPEEDUP_JOBS} process workers vs serial",
        ["mode", "seconds", "speedup", "ok"],
        [("serial", serial_s, 1.0, sum(o.ok for o in serial)),
         ("process", parallel_s, speedup, sum(o.ok for o in parallel))]))

    assert all(o.ok for o in serial) and all(o.ok for o in parallel)
    assert [o.verdict for o in serial] == [o.verdict for o in parallel]
    if cores >= SPEEDUP_JOBS:
        assert speedup >= SPEEDUP_BAR, (
            f"{SPEEDUP_JOBS}-worker speedup {speedup:.2f}x is below the "
            f"{SPEEDUP_BAR}x acceptance bar on a {cores}-core host")


@pytest.mark.experiment("parallel_batch")
def test_artifact_load_beats_full_build(benchmark):
    _warm_interpreter()
    schema = adversarial_schema(ADVERSARIAL_SIZE, seed=0)
    config = EngineConfig()

    def build():
        pipeline = Pipeline(schema, config)
        pipeline.system
        return pipeline

    def measure():
        build_s = best_of(build, rounds=3)
        payload = pickle.dumps(build().compile(),
                               protocol=pickle.HIGHEST_PROTOCOL)
        load_s = best_of(lambda: _loads_without_gc(payload), rounds=5)
        return build_s, load_s, payload

    build_s, load_s, payload = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    speedup = build_s / load_s
    print()
    print(render_table(
        f"cold start — adversarial({ADVERSARIAL_SIZE}) Phase-1/2 build "
        f"vs artifact rehydration",
        ["path", "seconds", "speedup", "artifact bytes"],
        [("full build", build_s, 1.0, "-"),
         ("artifact load", load_s, speedup, len(payload))]))

    # The rehydrated snapshot must also be a working pipeline, not just
    # fast bytes: it has to reach the same support verdict.
    rehydrated = Pipeline.from_artifact(_loads_without_gc(payload))
    assert rehydrated.support.support == build().support.support
    assert speedup >= COLD_START_BAR, (
        f"artifact rehydration is only {speedup:.1f}x faster than the "
        f"full build; below the {COLD_START_BAR}x acceptance bar, the "
        f"disk cache is not paying for its complexity")


@pytest.mark.experiment("parallel_batch")
def test_deadline_isolates_exptime_query(benchmark):
    reduction = machine_to_schema(parity_machine(), (0, 1, 0, 1), 6, 6)
    queries = [
        {"schema": render_schema(reduction.schema),
         "formula": str(reduction.target)},
        {"schema": "class A isa not B endclass class B endclass",
         "formula": "A"},
    ]

    def measure():
        session = SchemaSession()
        try:
            start = time.perf_counter()
            outcomes = session.run_batch(queries, deadline=0.05)
            return time.perf_counter() - start, outcomes
        finally:
            session.close()

    wall_s, outcomes = benchmark.pedantic(measure, rounds=1, iterations=1)
    hard, easy = outcomes
    print()
    print(render_table(
        "50 ms deadline vs Theorem 4.1 reduction schema",
        ["query", "timed out", "steps", "duration s"],
        [("EXPTIME reduction", hard.timed_out, hard.steps, hard.duration),
         ("trivial", easy.timed_out, easy.steps, easy.duration)]))

    assert hard.timed_out and hard.error.exit_code == 75
    assert easy.ok and easy.verdict is True
    assert wall_s < 1.0, (
        f"50ms-deadline batch took {wall_s:.2f}s; budget checks are not "
        f"reaching the hot loops often enough")


@pytest.mark.experiment("parallel_batch")
def test_process_and_serial_outcomes_identical(benchmark):
    queries = _batch(size=9)[:4]

    def verdicts():
        _, serial = _run(queries, jobs=1, mode="serial")
        _, threaded = _run(queries, jobs=2, mode="thread")
        _, processed = _run(queries, jobs=2, mode="process")
        return serial, threaded, processed

    serial, threaded, processed = benchmark.pedantic(
        verdicts, rounds=1, iterations=1)
    assert ([o.verdict for o in serial]
            == [o.verdict for o in threaded]
            == [o.verdict for o in processed])
