"""Experiment "query": the rewrite cache must beat cold saturation.

Acceptance bars for the conjunctive-query answering subsystem behind
:meth:`~repro.engine.session.SchemaSession.query` and ``POST /v1/query``:

* **Warm cache speedup** — replaying a mixed star/chain/boolean workload
  against a :class:`~repro.qa.rewriter.QueryRewriter` whose cache was
  populated by a first pass must beat re-saturating from scratch by
  >= ``WARM_SPEEDUP_BAR``.  The cold side pays the full
  specialize/eliminate/unify fixpoint plus subsumption pruning per
  query; the warm side is an LRU lookup on the canonical rendering.
  (The BENCH_query.json sweep records far larger ratios; the CI bar is
  deliberately low so a loaded runner cannot flake it.)
* **Identical unions** — the warm replay must return the exact disjunct
  sets the cold pass produced, every result flagged ``cached``.  A cache
  that changes answers is a bug, not a feature.
* **Accounting** — rewrite work must flow through the ambient tracer
  (``qa.rewrite_cache_hits`` / ``qa.rewrite_cache_misses`` /
  ``qa.rewrite_steps``) — the service's ``/metrics`` endpoint
  republishes these.
"""

import pytest

from benchlib import best_of, render_table
from repro.obs.tracer import Tracer, use_tracer
from repro.qa import QueryRewriter, certain_answers, parse_query
from repro.reasoner.satisfiability import Reasoner
from repro.workloads.query_workloads import (
    query_workload,
    sample_database,
    taxonomy_schema,
)

#: CI-safe floor; the committed BENCH_query.json records far larger ratios.
WARM_SPEEDUP_BAR = 5.0


def _parsed_workload(schema, **kwargs):
    suite = query_workload(schema, **kwargs)
    return [parse_query(source, schema) for _, source in suite]


def test_warm_rewrite_cache_beats_cold_saturation():
    schema = taxonomy_schema(2, 3)
    reasoner = Reasoner(schema)
    closure = reasoner.pipeline.closure_index()
    queries = _parsed_workload(schema, per_shape=4, seed=3)

    def run_cold():
        # A fresh rewriter per round: every query pays full saturation.
        rewriter = QueryRewriter(closure)
        return [rewriter.rewrite(query) for query in queries]

    warm_rewriter = QueryRewriter(closure)
    cold_results = [warm_rewriter.rewrite(query) for query in queries]

    def run_warm():
        return [warm_rewriter.rewrite(query) for query in queries]

    cold_s = best_of(run_cold, rounds=3)
    warm_s = best_of(run_warm, rounds=3)
    speedup = cold_s / warm_s if warm_s else float("inf")

    warm_results = run_warm()
    print(render_table(
        "Query rewriting — warm cache vs cold saturation",
        ["queries", "disjuncts", "steps", "cold s", "warm s", "speedup"],
        [(len(queries), sum(len(r.disjuncts) for r in cold_results),
          sum(r.steps for r in cold_results), cold_s, warm_s, speedup)]))

    assert all(result.cached for result in warm_results)
    assert [r.disjuncts for r in warm_results] \
        == [r.disjuncts for r in cold_results]
    assert speedup >= WARM_SPEEDUP_BAR, (
        f"warm rewrite cache only {speedup:.1f}x over cold saturation "
        f"(bar {WARM_SPEEDUP_BAR}x)")


def test_rewrite_counters_flow_through_tracer():
    schema = taxonomy_schema(2, 2)
    reasoner = Reasoner(schema)
    closure = reasoner.pipeline.closure_index()
    query = parse_query("q(x) :- T(x)", schema)

    tracer = Tracer()
    with use_tracer(tracer):
        rewriter = QueryRewriter(closure, tracer=tracer)
        rewriter.rewrite(query)
        rewriter.rewrite(query)
    counters = tracer.counters
    assert counters.get("qa.rewrite_cache_misses", 0) == 1
    assert counters.get("qa.rewrite_cache_hits", 0) == 1
    assert counters.get("qa.rewrite_steps", 0) > 0


def test_workload_certain_answers_end_to_end():
    schema = taxonomy_schema(2, 2)
    reasoner = Reasoner(schema)
    rewriter = QueryRewriter(reasoner.pipeline.closure_index())
    from repro.qa.data import database_from_document

    database = database_from_document(
        schema, sample_database(schema, 10, seed=5))
    answered = 0
    for _, source in query_workload(schema, per_shape=3, seed=5):
        query = parse_query(source, schema)
        answer = certain_answers(rewriter, query, database,
                                 reasoner=reasoner)
        if answer.boolean or answer.answers:
            answered += 1
    # The seeded database populates every relation, so at least one query
    # of the suite has a non-empty certain answer.
    assert answered > 0


if __name__ == "__main__":
    pytest.main([__file__, "-v", "-s"])
