"""Experiment "Theorem 4.1": EXPTIME-hardness — expansion growth under the
Turing machine reduction.

The theorem's content, measured: as the simulated tape grows, the number of
consistent compound classes (and reasoning time) grows exponentially —
each extra tape cell multiplies the configuration space by the alphabet
size.  The benchmark runs the parity machine on growing space bounds and
asserts the exponential shape; the timed case is a fixed medium instance.
"""

import pytest

from benchlib import growth_ratios, is_superlinear, render_table, timed
from repro import Reasoner
from repro.reductions import machine_to_schema, parity_machine, starts_with_one


def decide(word: str, time_bound: int, space: int) -> bool:
    machine = parity_machine()
    reduction = machine_to_schema(machine, word, time_bound, space)
    reasoner = Reasoner(reduction.schema)
    return reasoner.is_satisfiable(reduction.target)


@pytest.mark.experiment("theorem41")
def test_reduction_correctness_small(benchmark):
    """Timed: the smallest nontrivial accepting run."""
    machine = starts_with_one()

    def run():
        reduction = machine_to_schema(machine, "1", 1, 1)
        return Reasoner(reduction.schema).is_satisfiable(reduction.target)

    assert benchmark(run)


@pytest.mark.experiment("theorem41")
def test_exponential_expansion_in_space(benchmark):
    """The paper's shape: compound classes grow exponentially with the tape.

    Rows: space bound S; classes in the schema (polynomial in S); compound
    classes in the expansion (exponential in S).
    """
    machine = parity_machine()

    def measure():
        rows = []
        for space in (1, 2, 3):
            word = "1" * (space - 1)
            time_bound = space + 1
            reduction = machine_to_schema(machine, word, time_bound, space)
            reasoner = Reasoner(reduction.schema)
            seconds, _ = timed(lambda r=reasoner, t=reduction.target:
                               r.is_satisfiable(t))
            rows.append((space, len(reduction.schema.class_symbols),
                         len(reasoner.expansion.compound_classes), seconds))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(render_table(
        "Theorem 4.1 — parity machine, growing tape",
        ["space S", "schema classes", "compound classes", "seconds"], rows))

    schema_sizes = [r[1] for r in rows]
    compounds = [r[2] for r in rows]
    # Schema grows polynomially; the expansion outpaces it clearly.
    assert is_superlinear(schema_sizes, compounds)
    # And the per-step expansion growth accelerates (exponential signature).
    ratios = growth_ratios([float(c) for c in compounds])
    assert ratios[-1] > 1.5


@pytest.mark.experiment("theorem41")
@pytest.mark.parametrize("word,time_bound,space,expected", [
    ("11", 4, 3, True),
    ("1", 3, 2, False),
])
def test_acceptance_mirrors_satisfiability(benchmark, word, time_bound,
                                           space, expected):
    result = benchmark.pedantic(decide, args=(word, time_bound, space),
                                rounds=1, iterations=1)
    assert result == expected
    assert parity_machine().accepts(word, time_bound, space) == expected
