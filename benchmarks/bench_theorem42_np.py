"""Experiment "Theorem 4.2": NP-hardness — reasoning cost on reduced
instances.

Two workload families feed this bench:

* **3SAT → CAR** (general schemas, ground truth from the bundled DPLL):
  the expansion enumerates satisfying assignments, so work grows
  exponentially with the variable count — the NP-hardness shape.
* **Intersection Pattern → CAR** (union-free, negation-free — the fragment
  Theorem 4.2 is actually about): cardinality-only encodings whose
  solvable/unsolvable verdicts match the combinatorial ground truth.
"""

import pytest

from benchlib import is_superlinear, render_table, timed
from repro import Reasoner
from repro.reductions import (
    IntersectionPattern,
    cnf_to_schema,
    dpll_satisfiable,
    pattern_solvable_bruteforce,
    pattern_to_schema,
    random_cnf,
)


@pytest.mark.experiment("theorem42")
def test_sat_reduction_scaling(benchmark):
    """Reasoning time/expansion vs variable count on fixed-ratio 3SAT."""

    def measure():
        rows = []
        for n_vars in (4, 6, 8, 10):
            formula = random_cnf(n_vars, n_clauses=n_vars * 2, seed=7)
            schema = cnf_to_schema(formula)
            reasoner = Reasoner(schema)
            seconds, verdict = timed(
                lambda r=reasoner: r.is_satisfiable("World"))
            expected = dpll_satisfiable(formula) is not None
            assert verdict == expected
            rows.append((n_vars, len(schema.class_symbols),
                         len(reasoner.expansion.compound_classes), seconds))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(render_table(
        "Theorem 4.2 — 3SAT→CAR, clause/variable ratio 2",
        ["vars", "classes", "compound classes", "seconds"], rows))
    assert is_superlinear([r[1] for r in rows], [r[2] for r in rows])


@pytest.mark.experiment("theorem42")
def test_sat_single_instance(benchmark):
    formula = random_cnf(6, 12, seed=3)
    schema = cnf_to_schema(formula)

    def run():
        return Reasoner(schema).is_satisfiable("World")

    verdict = benchmark(run)
    assert verdict == (dpll_satisfiable(formula) is not None)


PATTERNS = [
    ("feasible 2x2", IntersectionPattern.of([[2, 1], [1, 2]]), True),
    ("infeasible 2x2", IntersectionPattern.of([[2, 3], [3, 3]]), False),
    ("feasible 3x3", IntersectionPattern.of(
        [[2, 1, 0], [1, 2, 1], [0, 1, 2]]), True),
]


@pytest.mark.experiment("theorem42")
@pytest.mark.parametrize("label,pattern,solvable", PATTERNS)
def test_intersection_pattern_instances(benchmark, label, pattern, solvable):
    """Union-free/negation-free instances: verdicts vs combinatorial truth."""
    assert pattern_solvable_bruteforce(pattern) == solvable
    schema = pattern_to_schema(pattern)
    assert schema.is_union_free() and schema.is_negation_free()

    verdict = benchmark.pedantic(
        lambda: Reasoner(schema).is_satisfiable("W"), rounds=1, iterations=1)
    if solvable:
        assert verdict  # IP solution ⇒ model (exact direction)
    else:
        # These instances fail already pairwise, which the relaxed converse
        # direction of the encoding also refutes.
        assert not verdict


@pytest.mark.experiment("theorem42")
def test_intersection_pattern_scaling(benchmark):
    """Schema growth with the number of sets n (quadratic classes, growing
    reasoning cost)."""

    def measure():
        rows = []
        # n = 4 already takes minutes (the NP blow-up is the point); keep
        # the timed suite snappy and leave larger n to run_experiments.py.
        for n in (2, 3):
            matrix = [[2 if i == j else 1 for j in range(n)] for i in range(n)]
            pattern = IntersectionPattern.of(matrix)
            schema = pattern_to_schema(pattern)
            reasoner = Reasoner(schema)
            seconds, verdict = timed(lambda r=reasoner: r.is_satisfiable("W"))
            rows.append((n, len(schema.class_symbols),
                         len(reasoner.expansion.compound_classes),
                         verdict, seconds))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(render_table(
        "Theorem 4.2 — Intersection Pattern, growing n",
        ["n", "classes", "compound classes", "satisfiable", "seconds"], rows))
