"""Benchmark-suite configuration.

Makes the sibling ``benchlib`` helpers importable regardless of the pytest
rootdir, and registers the experiment-id marker used to map benchmarks to
the DESIGN.md experiment index.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "experiment(id): maps a benchmark to a DESIGN.md experiment row")
