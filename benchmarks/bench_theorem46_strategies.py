"""Experiment "Theorem 4.6 / Section 4.3": preselection strategies vs the
trivial method.

The naive method filters all ``2^|C|`` subsets; the strategic method builds
the disjointness/inclusion tables, decomposes ``G_S`` into clusters
(Theorem 4.6), and enumerates per cluster.  On clustered schemas the naive
cost explodes with the *total* class count while the strategic cost grows
linearly in the number of clusters — the speedup the section promises.
"""

import pytest

from benchlib import is_superlinear, render_table, timed
from repro.engine.config import EngineConfig
from repro.expansion.enumerate import naive_compound_classes, strategic_compound_classes
from repro.reasoner.satisfiability import Reasoner
from repro.workloads.generators import clustered_schema

CLUSTER_SIZE = 3


@pytest.mark.experiment("theorem46")
def test_strategies_crossover(benchmark):
    def measure():
        rows = []
        for n_clusters in (1, 2, 3, 4, 5):
            schema = clustered_schema(n_clusters, CLUSTER_SIZE, seed=11)
            naive_seconds, naive = timed(
                lambda s=schema: naive_compound_classes(s))
            strategic_seconds, strategic = timed(
                lambda s=schema: strategic_compound_classes(s))
            rows.append((n_clusters * CLUSTER_SIZE, len(naive),
                         naive_seconds, len(strategic), strategic_seconds))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(render_table(
        "Theorem 4.6 — naive vs strategic compound-class enumeration",
        ["classes", "naive compounds", "naive s",
         "strategic compounds", "strategic s"], rows))

    naive_counts = [float(r[1]) for r in rows]
    strategic_counts = [float(r[3]) for r in rows]
    # Naive grows exponentially with total classes, strategic linearly with
    # clusters: naive must clearly outgrow strategic.
    assert is_superlinear(strategic_counts, naive_counts, factor=2.0)
    # The strategic count is exactly the per-cluster sum (plus the empty
    # compound), so it scales linearly in the cluster count.
    per_cluster = (strategic_counts[-1] - 1) / (len(rows))
    assert per_cluster <= 2 ** CLUSTER_SIZE


@pytest.mark.experiment("theorem46")
def test_verdicts_agree_between_strategies(benchmark):
    schema = clustered_schema(3, CLUSTER_SIZE, seed=11)

    def verdicts():
        naive = Reasoner(schema, config=EngineConfig(strategy="naive"))
        strategic = Reasoner(schema, config=EngineConfig(strategy="strategic"))
        return [(name, naive.is_satisfiable(name),
                 strategic.is_satisfiable(name))
                for name in sorted(schema.class_symbols)]

    for name, left, right in benchmark.pedantic(verdicts, rounds=1,
                                                iterations=1):
        assert left == right, name


@pytest.mark.experiment("theorem46")
def test_strategic_single_run(benchmark):
    schema = clustered_schema(5, CLUSTER_SIZE, seed=11)
    result = benchmark(lambda: strategic_compound_classes(schema))
    assert result
