"""Experiment "service": the asyncio front end must make repeats cheap.

Acceptance bars for ``repro serve``:

* **Warm-cache throughput** — repeated ``POST /v1/satisfiable`` over
  real keep-alive HTTP is answered from the fingerprint-keyed result
  cache on the event-loop fast path.  Driven concurrently (8 pipelined
  connections from the closed-loop generator in :mod:`loadgen`), the
  asyncio transport must clear **10x** the 1,289.955 req/s the PR 5
  threaded front end measured on this same query, plus an absolute
  floor that guards against the cache being silently bypassed.
* **Budget responsiveness** — a 50 ms ``X-Repro-Timeout-Ms`` budget
  against the Theorem 4.1 EXPTIME reduction returns HTTP 504 (sysexit
  75 in the envelope) in under a second, while a concurrent trivial
  query still gets its verdict.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

import loadgen
from benchlib import render_table
from repro.parser.printer import render_schema
from repro.reductions import machine_to_schema, parity_machine
from repro.service import ReproService, ServiceConfig

DISJOINT_SCHEMA = "class A isa not B endclass class B endclass"
WARM_BODY = {"schema": DISJOINT_SCHEMA, "formula": "A and not B"}

#: what the PR 5 threaded, one-request-per-connection front end measured
#: for this exact warm-cache query (BENCH_service.json history).
THREADED_BASELINE_RPS = 1289.955
SPEEDUP_BAR = 10.0
ABSOLUTE_FLOOR_RPS = 500.0

CONNECTIONS = 8
REQUESTS_PER_CONNECTION = 1000
PIPELINE = 32
TRIALS = 3  # best-of: the bar is about capability, not scheduler luck


def _post(base, path, body, headers=None, timeout=30):
    request = urllib.request.Request(
        base + path, data=json.dumps(body).encode(),
        headers=headers or {}, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.mark.experiment("service")
def test_warm_cache_throughput(benchmark):
    def measure():
        with ReproService(ServiceConfig(port=0)) as service:
            # one cold miss, fully envelope-checked
            warm = loadgen.run_load(
                service.host, service.port, connections=1,
                requests_per_connection=1, body=WARM_BODY)
            assert warm.statuses == {200: 1}
            serial = loadgen.run_load(
                service.host, service.port, connections=1,
                requests_per_connection=200, body=WARM_BODY)
            best = None
            for _ in range(TRIALS):
                trial = loadgen.run_load(
                    service.host, service.port, connections=CONNECTIONS,
                    requests_per_connection=REQUESTS_PER_CONNECTION,
                    pipeline=PIPELINE, body=WARM_BODY, validate="first")
                if best is None or trial.rps > best.rps:
                    best = trial
            return serial, best, service.cache.stats(), \
                service.latency.snapshot()

    serial, concurrent, stats, histogram = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    speedup = concurrent.rps / THREADED_BASELINE_RPS
    print()
    print(render_table(
        "warm-cache throughput — POST /v1/satisfiable over keep-alive "
        "HTTP",
        ["drive", "requests", "req/s", "p50 ms", "p99 ms",
         "vs threaded baseline"],
        [("PR 5 threaded baseline (1 conn, Connection: close)",
          "-", THREADED_BASELINE_RPS, "-", "-", "1.0x"),
         ("serial (1 conn, keep-alive, lockstep)",
          serial.requests, serial.rps, serial.percentile_ms(0.50),
          serial.percentile_ms(0.99),
          f"{serial.rps / THREADED_BASELINE_RPS:.1f}x"),
         (f"concurrent ({CONNECTIONS} conns, pipeline {PIPELINE})",
          concurrent.requests, concurrent.rps,
          concurrent.percentile_ms(0.50), concurrent.percentile_ms(0.99),
          f"{speedup:.1f}x")]))

    total = serial.requests + concurrent.requests * TRIALS + 1
    assert serial.statuses == {200: serial.requests}
    assert concurrent.statuses == {200: concurrent.requests}
    assert serial.transport_errors == 0
    assert concurrent.transport_errors == 0
    assert serial.envelope_violations == 0
    assert concurrent.envelope_violations == 0
    assert stats.misses == 1, (
        "every warm request must reuse the one cold result")
    assert histogram["count"] >= total
    assert concurrent.rps >= ABSOLUTE_FLOOR_RPS
    assert speedup >= SPEEDUP_BAR, (
        f"concurrent warm-cache throughput {concurrent.rps:.0f} req/s is "
        f"only {speedup:.1f}x the {THREADED_BASELINE_RPS:.0f} req/s "
        f"threaded baseline (bar: {SPEEDUP_BAR:.0f}x)")


@pytest.mark.experiment("service")
def test_budget_504_leaves_neighbors_unharmed(benchmark):
    reduction = machine_to_schema(parity_machine(), (0, 1, 0, 1), 6, 6)
    hard = {"schema": render_schema(reduction.schema),
            "formula": str(reduction.target)}
    easy = {"schema": DISJOINT_SCHEMA, "formula": "A"}

    def measure():
        with ReproService(ServiceConfig(port=0)) as service:
            base = f"http://{service.host}:{service.port}"
            outcome = {}

            def slow():
                outcome["hard"] = _post(
                    base, "/v1/satisfiable", hard,
                    headers={"X-Repro-Timeout-Ms": "50"})

            thread = threading.Thread(target=slow)
            start = time.perf_counter()
            thread.start()
            outcome["easy"] = _post(base, "/v1/satisfiable", easy)
            thread.join(timeout=10)
            return time.perf_counter() - start, outcome

    wall_s, outcome = benchmark.pedantic(measure, rounds=1, iterations=1)
    hard_status, hard_payload = outcome["hard"]
    easy_status, easy_payload = outcome["easy"]
    print()
    print(render_table(
        "50 ms budget vs Theorem 4.1 reduction over HTTP",
        ["query", "status", "error code", "wall s"],
        [("EXPTIME reduction", hard_status,
          hard_payload.get("error", {}).get("code", "-"), wall_s),
         ("trivial neighbor", easy_status, "-", wall_s)]))

    assert loadgen.check_envelope(hard_payload)
    assert loadgen.check_envelope(easy_payload)
    assert hard_status == 504
    assert hard_payload["error"]["sysexit"] == 75
    assert hard_payload["error"]["code"] == "budget_exceeded"
    assert easy_status == 200 and easy_payload["data"]["verdict"] is True
    assert wall_s < 1.0, (
        f"50ms-budget request took {wall_s:.2f}s to come back as 504")
