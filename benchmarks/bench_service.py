"""Experiment "service": the query service must make repeats cheap.

Acceptance bars for ``repro serve``:

* **Warm-cache throughput** — a repeated ``POST /v1/satisfiable`` over
  real HTTP is answered from the fingerprint-keyed result cache.  A
  conservative floor of 50 requests/second must hold (the steady state
  is orders of magnitude above it; the bar only guards against the cache
  being silently bypassed) and every warm request must be a cache hit.
* **Budget responsiveness** — a 50 ms ``X-Repro-Timeout-Ms`` budget
  against the Theorem 4.1 EXPTIME reduction returns HTTP 504 in under a
  second, while a concurrent trivial query still gets its verdict.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from benchlib import render_table
from repro.parser.printer import render_schema
from repro.reductions import machine_to_schema, parity_machine
from repro.service import ReproService, ServiceConfig

DISJOINT_SCHEMA = "class A isa not B endclass class B endclass"
WARM_REQUESTS = 200
THROUGHPUT_BAR_RPS = 50.0


def _post(base, path, body, headers=None, timeout=30):
    request = urllib.request.Request(
        base + path, data=json.dumps(body).encode(),
        headers=headers or {}, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


@pytest.mark.experiment("service")
def test_warm_cache_throughput(benchmark):
    body = {"schema": DISJOINT_SCHEMA, "formula": "A and not B"}

    def measure():
        with ReproService(ServiceConfig(port=0)) as service:
            base = f"http://{service.host}:{service.port}"
            _post(base, "/v1/satisfiable", body)  # the one cold miss
            start = time.perf_counter()
            statuses = [_post(base, "/v1/satisfiable", body)[0]
                        for _ in range(WARM_REQUESTS)]
            warm_s = time.perf_counter() - start
            return warm_s, statuses, service.cache.stats()

    warm_s, statuses, stats = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    rps = WARM_REQUESTS / warm_s
    print()
    print(render_table(
        f"warm-cache throughput — {WARM_REQUESTS} repeated "
        f"POST /v1/satisfiable",
        ["requests", "seconds", "req/s", "cache hits", "misses"],
        [(WARM_REQUESTS, warm_s, rps, stats.hits, stats.misses)]))

    assert all(status == 200 for status in statuses)
    assert stats.hits == WARM_REQUESTS, (
        "warm requests must be answered by the result cache")
    assert stats.misses == 1
    assert rps >= THROUGHPUT_BAR_RPS, (
        f"warm-cache throughput {rps:.0f} req/s is below the "
        f"{THROUGHPUT_BAR_RPS:.0f} req/s acceptance bar")


@pytest.mark.experiment("service")
def test_budget_504_leaves_neighbors_unharmed(benchmark):
    reduction = machine_to_schema(parity_machine(), (0, 1, 0, 1), 6, 6)
    hard = {"schema": render_schema(reduction.schema),
            "formula": str(reduction.target)}
    easy = {"schema": DISJOINT_SCHEMA, "formula": "A"}

    def measure():
        with ReproService(ServiceConfig(port=0)) as service:
            base = f"http://{service.host}:{service.port}"
            outcome = {}

            def slow():
                outcome["hard"] = _post(
                    base, "/v1/satisfiable", hard,
                    headers={"X-Repro-Timeout-Ms": "50"})

            thread = threading.Thread(target=slow)
            start = time.perf_counter()
            thread.start()
            outcome["easy"] = _post(base, "/v1/satisfiable", easy)
            thread.join(timeout=10)
            return time.perf_counter() - start, outcome

    wall_s, outcome = benchmark.pedantic(measure, rounds=1, iterations=1)
    hard_status, hard_payload = outcome["hard"]
    easy_status, easy_payload = outcome["easy"]
    print()
    print(render_table(
        "50 ms budget vs Theorem 4.1 reduction over HTTP",
        ["query", "status", "steps", "wall s"],
        [("EXPTIME reduction", hard_status,
          hard_payload.get("steps", 0), wall_s),
         ("trivial neighbor", easy_status, "-", wall_s)]))

    assert hard_status == 504
    assert hard_payload["error"]["exit_code"] == 75
    assert easy_status == 200 and easy_payload["verdict"] is True
    assert wall_s < 1.0, (
        f"50ms-budget request took {wall_s:.2f}s to come back as 504")
