"""Experiment "Section 4.4": generalization hierarchies are polynomial.

For schemas organized as generalization hierarchies (treelike isa with
sibling disjointness — the shape most object-oriented models assume), the
consistent compound classes are exactly the root-to-node paths: one per
class.  The method therefore runs in polynomial time; we grow balanced
hierarchies and check (a) the compound count equals class count + 1 and
(b) reasoning time stays far below the exponential regime.
"""

import pytest

from benchlib import is_subquadratic, render_table, timed
from repro import Reasoner
from repro.expansion.enumerate import compound_classes
from repro.expansion.graph import hierarchy_compound_classes
from repro.workloads.generators import hierarchy_schema


@pytest.mark.experiment("section44")
def test_hierarchy_polynomial_scaling(benchmark):
    def measure():
        rows = []
        for depth, branching in ((2, 2), (3, 2), (3, 3), (4, 3)):
            schema = hierarchy_schema(depth, branching)
            n_classes = len(schema.class_symbols)
            seconds, compounds = timed(
                lambda s=schema: compound_classes(s, "auto"))
            rows.append((f"{depth}/{branching}", n_classes,
                         len(compounds), seconds))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(render_table(
        "Section 4.4 — balanced hierarchies (depth/branching)",
        ["shape", "classes", "compound classes", "seconds"], rows))

    for _, n_classes, n_compounds, _ in rows:
        # The paper's count: one compound class per class (plus the empty).
        assert n_compounds == n_classes + 1

    classes = [float(r[1]) for r in rows]
    times = [max(r[3], 1e-5) for r in rows]
    assert is_subquadratic(classes, times, slack=8.0)


@pytest.mark.experiment("section44")
def test_hierarchy_closed_form_agrees_with_dpll(benchmark):
    schema = hierarchy_schema(3, 3)

    def both():
        closed = hierarchy_compound_classes(schema)
        general = compound_classes(schema, "strategic")
        return closed, general

    closed, general = benchmark.pedantic(both, rounds=1, iterations=1)
    assert closed is not None
    assert set(closed) == set(general)


@pytest.mark.experiment("section44")
def test_hierarchy_reasoning_end_to_end(benchmark):
    schema = hierarchy_schema(3, 3, with_attributes=True, seed=5)

    def run():
        return Reasoner(schema).check_coherence()

    report = benchmark(run)
    assert report.is_coherent
