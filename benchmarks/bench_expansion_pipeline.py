"""Experiment "expansion pipeline": the indexed Ψ_S construction.

The endpoint indexes replace the linear scans ``attributes_with_left`` /
``attributes_with_right`` / ``relations_with_role`` with prebuilt
``(attr, endpoint) → compounds`` lookups, turning the Ψ_S build from cubic
to quadratic on attribute-dense schemas.  ``wide_attribute_schema``
realizes the worst case — quadratically many compound attributes over one
specialization chain — and the acceptance bar is a ≥2× construction
speedup at ≥200 compound classes, with verdicts identical across the
naive, strategic, and unindexed pipelines.
"""

from dataclasses import replace

import pytest

from benchlib import best_of, render_table
from repro.engine.config import EngineConfig
from repro.expansion.expansion import build_expansion
from repro.linear.support import acceptable_support
from repro.linear.system import build_system
from repro.reasoner.satisfiability import Reasoner
from repro.workloads.generators import random_schema, wide_attribute_schema


@pytest.mark.experiment("expansion")
def test_indexed_psi_construction_speedup(benchmark):
    def measure():
        rows = []
        for n in (60, 120, 200, 260):
            expansion = build_expansion(wide_attribute_schema(n))
            scanning = replace(expansion, indexed=False)
            # Warm the lazy index so the measurement isolates the lookups.
            expansion.attributes_with_left("link", frozenset(("C0",)))
            indexed_s = best_of(lambda e=expansion: build_system(e), rounds=4)
            scan_s = best_of(lambda e=scanning: build_system(e), rounds=2)
            rows.append((n, len(expansion.compound_classes), indexed_s,
                         scan_s, scan_s / indexed_s))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(render_table(
        "Ψ_S construction — endpoint indexes vs linear scans",
        ["chain n", "compounds", "indexed s", "scan s", "speedup"], rows))

    large = [row for row in rows if row[1] >= 200]
    assert large, "workload must reach 200 compound classes"
    # The acceptance bar: at ≥200 compounds the indexes must at least halve
    # the construction time (measured speedups run ~2.4–2.9×).
    assert max(row[4] for row in large) >= 2.0


@pytest.mark.experiment("expansion")
def test_verdicts_identical_across_pipelines(benchmark):
    def verdict_sets():
        outcomes = []
        for seed in range(6):
            schema = random_schema(6, seed=seed)
            per_pipeline = [
                frozenset(Reasoner(schema, config=EngineConfig(strategy="naive"))
                          .satisfiable_classes()),
                frozenset(Reasoner(schema, config=EngineConfig(strategy="strategic"))
                          .satisfiable_classes()),
            ]
            scanning = replace(build_expansion(schema), indexed=False)
            populated = set(
                acceptable_support(scanning).supported_compound_classes())
            per_pipeline.append(frozenset(
                name for name in schema.class_symbols
                if any(name in members for members in populated)))
            outcomes.append(per_pipeline)
        return outcomes

    outcomes = benchmark.pedantic(verdict_sets, rounds=1, iterations=1)
    for per_pipeline in outcomes:
        assert len(set(per_pipeline)) == 1
