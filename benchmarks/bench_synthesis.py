"""Experiment "Theorem 3.3 (constructive)": model synthesis scaling.

The paper proves that an acceptable integer solution yields a model; our
synthesizer makes that constructive.  This bench measures construction time
and model size as the witness scale grows (the homogeneity knob) and as the
cardinality chain forces geometric populations — every produced model is
re-verified by the independent checker inside the timed region.
"""

import pytest

from benchlib import render_table, timed
from repro.reasoner.satisfiability import Reasoner
from repro.semantics.checker import is_model
from repro.synthesis.builder import synthesize_model
from repro.workloads.generators import cardinality_chain_schema
from repro.workloads.paper_schemas import figure2_schema


@pytest.mark.experiment("synthesis")
def test_synthesis_scales_with_witness(benchmark):
    """Model size and time vs requested scale on a fixed ratio schema."""
    schema = cardinality_chain_schema(2, fan_out=2)
    reasoner = Reasoner(schema)

    def measure():
        rows = []
        for scale in (1, 2, 4, 8):
            seconds, report = timed(
                lambda s=scale: synthesize_model(reasoner, target="L0",
                                                 scale=s))
            assert is_model(report.interpretation, schema)
            rows.append((scale, report.n_objects, seconds))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(render_table(
        "Synthesis — chain schema L0→L1→L2 (fan-out 2), growing scale",
        ["scale", "objects", "seconds"], rows))
    # Objects grow linearly with the scale (homogeneity).
    assert rows[-1][1] == rows[0][1] * 8


@pytest.mark.experiment("synthesis")
def test_synthesis_chain_depth(benchmark):
    """Chain depth drives geometric model growth: |L_k| = 2^k · |L_0|."""

    def measure():
        rows = []
        for length in (1, 2, 3, 4):
            schema = cardinality_chain_schema(length, fan_out=2)
            reasoner = Reasoner(schema)
            seconds, report = timed(
                lambda r=reasoner: synthesize_model(r, target="L0"))
            assert is_model(report.interpretation, schema)
            last = len(report.interpretation.class_ext(f"L{length}"))
            first = len(report.interpretation.class_ext("L0"))
            assert last == (2 ** length) * first
            rows.append((length, report.n_objects, seconds))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(render_table(
        "Synthesis — chain depth (fan-out 2)",
        ["chain length", "objects", "seconds"], rows))


@pytest.mark.experiment("synthesis")
@pytest.mark.slow
def test_figure2_synthesis_single(benchmark):
    """The paper's own schema, end to end, as the timed reference case."""
    reasoner = Reasoner(figure2_schema())

    def run():
        report = synthesize_model(reasoner, target="Grad_Student")
        return report

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert report.interpretation.class_ext("Grad_Student")
