"""Ablation benchmarks for the engineering choices DESIGN.md calls out.

Three optimizations sit between the paper's algorithm and a practical
implementation; each is toggleable, and each toggle must not change any
verdict (asserted here and property-tested in the test suite):

1. **Combinatorial propagation** before the LP (pin obviously-dead
   unknowns) — fewer and smaller LP rounds;
2. **Interchangeable-column merging** in the max-support LP — compound
   attributes/relations with identical constraint columns collapse into
   one LP variable;
3. **Binding-entry filtering** in the expansion — compound objects no
   disequation mentions are never materialized.
"""

import pytest

from benchlib import render_table, timed
from repro.expansion.expansion import build_expansion
from repro.linear.support import acceptable_support
from repro.workloads.paper_schemas import figure2_schema


@pytest.fixture(scope="module")
def figure2_expansion():
    return build_expansion(figure2_schema())


@pytest.mark.experiment("ablations")
def test_ablation_propagation(benchmark, figure2_expansion):
    """LP-only vs propagation+LP on Figure 2 — same support, fewer rounds."""
    baseline = acceptable_support(figure2_expansion, use_propagation=False)
    optimized = benchmark(
        lambda: acceptable_support(figure2_expansion, use_propagation=True))
    assert baseline.support == optimized.support


@pytest.mark.experiment("ablations")
def test_ablation_column_merging(benchmark, figure2_expansion):
    """Merged vs per-unknown LP columns — same support, smaller LP."""

    def measure():
        merged_s, merged = timed(lambda: acceptable_support(
            figure2_expansion, merge_columns=True))
        unmerged_s, unmerged = timed(lambda: acceptable_support(
            figure2_expansion, merge_columns=False))
        return merged_s, merged, unmerged_s, unmerged

    merged_s, merged, unmerged_s, unmerged = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    print()
    print(render_table(
        "Ablation — column merging on Figure 2's Psi_S",
        ["variant", "seconds"],
        [("merged columns", merged_s), ("per-unknown columns", unmerged_s)]))
    assert merged.support == unmerged.support


@pytest.mark.experiment("ablations")
def test_ablation_table_deduction(benchmark):
    """Unit-propagation vs binary-clause (Krom) closure in the preselection
    tables: the stronger deduction derives strictly more facts on schemas
    with two-literal clauses, at polynomial cost — and never changes a
    reasoning verdict (it only prunes earlier)."""
    from repro.expansion.tables import build_tables
    from repro.parser.parser import parse_schema
    from repro.reasoner.satisfiability import Reasoner

    source_parts = []
    for i in range(8):
        source_parts.append(f"""
            class A{i} isa B{i} and C{i} endclass
            class B{i} isa D{i} or not C{i} endclass
            class C{i} endclass
            class D{i} endclass
        """)
    schema = parse_schema("\n".join(source_parts))

    def measure():
        unit_s, unit = timed(lambda: build_tables(schema, deduction="unit"))
        binary_s, binary = timed(
            lambda: build_tables(schema, deduction="binary"))
        return unit_s, unit, binary_s, binary

    unit_s, unit, binary_s, binary = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    unit_facts = sum(len(unit.superclasses(n)) for n in schema.class_symbols)
    binary_facts = sum(len(binary.superclasses(n))
                       for n in schema.class_symbols)
    print()
    print(render_table(
        "Ablation — table deduction strength",
        ["variant", "derived inclusions", "seconds"],
        [("unit propagation", unit_facts, unit_s),
         ("binary (Krom) closure", binary_facts, binary_s)]))
    assert binary_facts > unit_facts
    # Verdicts unaffected: tables only prune, the reasoner decides.
    reasoner = Reasoner(schema)
    assert reasoner.check_coherence().is_coherent


@pytest.mark.experiment("ablations")
def test_ablation_binding_filter(benchmark):
    """Definition 3.1 verbatim vs binding-entry filtering on Figure 1
    (where every cardinality is the unconstrained default)."""
    schema = figure2_schema()
    from repro.workloads.paper_schemas import figure1_schema

    fig1 = figure1_schema()

    def measure():
        rows = []
        for label, s in (("Figure 1", fig1), ("Figure 2", schema)):
            filtered = build_expansion(s)
            verbatim = build_expansion(s, include_unconstrained=True)
            rows.append((label, filtered.size(), verbatim.size()))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(render_table(
        "Ablation — binding-entry filtering (expansion size)",
        ["schema", "filtered", "Definition 3.1 verbatim"], rows))
    for _, filtered, verbatim in rows:
        assert filtered <= verbatim
    # Figure 1 is the dramatic case: no binding entries at all.
    assert rows[0][1] < rows[0][2] / 10
