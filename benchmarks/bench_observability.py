"""Experiment "observability": the tracing bus must be free when off.

The tracer is wired through every pipeline stage, the expansion
enumerators, and the LP backends, so the disabled path (:data:`NULL_TRACER`)
is on the hot path of *every* reasoning call.  The acceptance bar is that
tracing disabled costs under 5% of the workload's wall clock.  Two
measurements back that up:

* an instrumentation census — run the workload once with a counting tracer
  installed to learn exactly how many span/counter/gauge touches the
  pipeline makes, microbenchmark the no-op primitives, and bound the total
  disabled-path cost against the measured runtime;
* a wall-clock comparison of the same workload with tracing disabled vs
  enabled, as a sanity table (enabled does strictly more work).
"""

import time

import pytest

from benchlib import best_of, render_table
from repro.engine.config import EngineConfig
from repro.obs.tracer import NULL_TRACER, Tracer, use_tracer
from repro.reasoner.satisfiability import Reasoner
from repro.workloads.generators import wide_attribute_schema


class _CountingTracer(Tracer):
    """A real tracer that additionally counts every instrumentation call."""

    def __init__(self):
        super().__init__()
        self.touches = 0

    def span(self, name):
        self.touches += 1
        return super().span(name)

    def add(self, name, amount=1):
        self.touches += 1
        super().add(name, amount)

    def gauge(self, name, value):
        self.touches += 1
        super().gauge(name, value)


def _run(trace: bool):
    reasoner = Reasoner(wide_attribute_schema(40),
                        config=EngineConfig(trace=trace))
    return reasoner.is_satisfiable("C0")


def _null_percall(calls: int = 200_000) -> float:
    """Seconds per disabled span-plus-counter touch pair."""
    start = time.perf_counter()
    for _ in range(calls):
        with NULL_TRACER.span("bench"):
            pass
        NULL_TRACER.add("bench", 3)
    return (time.perf_counter() - start) / (2 * calls)


@pytest.mark.experiment("observability")
def test_disabled_tracing_overhead_under_5_percent(benchmark):
    def measure():
        # Census: how many tracer touches does one full pipeline run make?
        counting = _CountingTracer()
        with use_tracer(counting):
            _run(False)  # trace=False resolves to the ambient tracer
        touches = counting.touches

        disabled_s = best_of(lambda: _run(False), rounds=3)
        enabled_s = best_of(lambda: _run(True), rounds=3)
        percall_s = _null_percall()
        bound_s = touches * percall_s
        return touches, percall_s, bound_s, disabled_s, enabled_s

    touches, percall_s, bound_s, disabled_s, enabled_s = benchmark.pedantic(
        measure, rounds=1, iterations=1)
    print()
    print(render_table(
        "disabled-tracing overhead bound (wide_attribute_schema(40))",
        ["touches", "null ns/call", "bound ms", "disabled ms", "enabled ms",
         "bound %"],
        [(touches, percall_s * 1e9, bound_s * 1e3, disabled_s * 1e3,
          enabled_s * 1e3, 100 * bound_s / disabled_s)]))

    # Acceptance bar: every no-op touch the pipeline makes, added up at the
    # measured per-call cost, stays under 5% of the workload's wall clock.
    assert bound_s < 0.05 * disabled_s, (
        f"disabled tracing bound {bound_s:.6f}s is >=5% of "
        f"{disabled_s:.6f}s runtime")
    # Sanity: enabling tracing does not make the run faster (generous noise
    # margin — enabled does strictly more bookkeeping).
    assert disabled_s <= enabled_s * 1.25


@pytest.mark.experiment("observability")
def test_traced_and_untraced_verdicts_identical(benchmark):
    def verdicts():
        return _run(False), _run(True)

    untraced, traced = benchmark.pedantic(verdicts, rounds=1, iterations=1)
    assert untraced == traced
