"""Experiment "registry": delta revalidation must beat the cold rebuild.

Acceptance bars for the diff-aware revalidation path behind
:meth:`~repro.engine.session.SchemaSession.update` and the schema
registry:

* **Speedup** — revalidating a single-cluster edit of a wide
  multi-cluster schema through :meth:`Pipeline.recompile_from
  <repro.engine.pipeline.Pipeline.recompile_from>` beats the cold
  Phase-1/Phase-2 rebuild by >= ``SPEEDUP_BAR``.  Both sides run the
  exact LP backend so the comparison is arithmetic-for-arithmetic: the
  cold side solves one global Ψ_S system, the delta side only the dirty
  cluster's blocks.  (The BENCH_registry.json sweep on larger schemas
  shows 30-130x; the CI bar is deliberately far below the measured
  ratios so a loaded runner cannot flake it.)
* **Identical verdicts** — the revalidated pipeline must agree with a
  fresh build on every per-class satisfiability verdict and on the
  maximal acceptable support, for every schema in the sweep.  Speed
  that changes answers is a bug, not a feature.
* **Accounting** — the delta stats must show exactly one rebuilt
  cluster and all remaining clusters reused, and the reuse counters
  must flow through the ambient tracer (``registry.reuse`` /
  ``registry.rebuilt`` / ``registry.support_blocks_reused``) — the
  service's ``/metrics`` endpoint republishes these.
"""

import pytest

from benchlib import best_of, render_table
from repro.core.formulas import Clause, Formula, Lit
from repro.core.schema import ClassDef, Schema
from repro.engine import EngineConfig, Pipeline, SchemaDelta
from repro.obs.tracer import Tracer, use_tracer
from repro.reasoner.satisfiability import Reasoner
from repro.workloads.generators import clustered_schema

#: CI-safe floor; the committed BENCH_registry.json records 30x+.
SPEEDUP_BAR = 4.0

#: Pin the LP arithmetic core so cold and delta solve with the same
#: backend — ``auto`` flips between exact and float by system size,
#: which would compare different arithmetic, not different pipelines.
CONFIG = EngineConfig(lp_backend="exact")


def _single_cluster_edit(schema: Schema, cluster: int = 0) -> Schema:
    """Append one genuinely-new clause to the last class of ``cluster``."""
    names = [d.name for d in schema.class_definitions
             if d.name.startswith(f"K{cluster}_")]
    target = sorted(names)[-1]
    extra = Clause((Lit(f"K{cluster}_1"),))
    definitions = []
    for definition in schema.class_definitions:
        if definition.name != target:
            definitions.append(definition)
            continue
        clauses = definition.isa.clauses if definition.isa else ()
        definitions.append(ClassDef(
            target, Formula(clauses + (extra,)),
            definition.attributes, definition.participates))
    return Schema(definitions)


def _verdicts(pipeline: Pipeline) -> dict:
    reasoner = Reasoner.from_pipeline(pipeline)
    return {name: reasoner.is_satisfiable(name)
            for name in sorted(pipeline.schema.class_symbols)}


def test_single_cluster_edit_beats_cold_rebuild():
    old = clustered_schema(8, 4, seed=7)
    cold_pipeline = Pipeline(old, CONFIG)
    _ = cold_pipeline.support  # warm the interpreter before timing
    artifact = cold_pipeline.compile()

    new = _single_cluster_edit(old)
    delta = SchemaDelta.between(old, new)
    assert not delta.is_empty()

    def run_delta():
        pipeline = Pipeline.recompile_from(artifact, delta, CONFIG)
        _ = pipeline.support
        return pipeline

    def run_cold():
        pipeline = Pipeline(new, CONFIG)
        _ = pipeline.support
        return pipeline

    delta_s = best_of(run_delta, rounds=3)
    cold_s = best_of(run_cold, rounds=3)
    speedup = cold_s / delta_s if delta_s else float("inf")

    delta_pipeline = run_delta()
    cold_pipeline = run_cold()
    stats = delta_pipeline.delta_stats

    print(render_table(
        "Registry revalidation — single-cluster edit vs cold rebuild",
        ["clusters", "cold s", "delta s", "speedup", "reused", "rebuilt"],
        [(stats["clusters_total"], cold_s, delta_s, speedup,
          stats["clusters_reused"], stats["clusters_rebuilt"])]))

    assert stats["mode"] == "delta"
    assert stats["clusters_rebuilt"] == 1
    assert stats["clusters_reused"] == stats["clusters_total"] - 1
    assert stats["support_blocks_reused"] > 0

    # Verdict parity: same satisfiable classes, same maximal support.
    assert _verdicts(delta_pipeline) == _verdicts(cold_pipeline)
    delta_support = {delta_pipeline.system.unknowns[i]
                     for i in delta_pipeline.support.support}
    cold_support = {cold_pipeline.system.unknowns[i]
                    for i in cold_pipeline.support.support}
    assert delta_support == cold_support

    assert speedup >= SPEEDUP_BAR, (
        f"delta revalidation only {speedup:.1f}x over cold rebuild "
        f"(bar {SPEEDUP_BAR}x)")


def test_reuse_counters_flow_through_tracer():
    old = clustered_schema(6, 4, seed=7)
    pipeline = Pipeline(old, CONFIG)
    _ = pipeline.support
    artifact = pipeline.compile()
    new = _single_cluster_edit(old)
    delta = SchemaDelta.between(old, new)

    tracer = Tracer()
    with use_tracer(tracer):
        revalidated = Pipeline.recompile_from(artifact, delta, CONFIG,
                                              tracer=tracer)
        _ = revalidated.support
    counters = tracer.counters
    assert counters.get("registry.reuse", 0) > 0
    assert counters.get("registry.rebuilt", 0) == 1
    assert counters.get("registry.support_blocks_reused", 0) > 0


def test_verdict_parity_across_sweep():
    for n_clusters, cluster_size, seed in ((8, 4, 7), (10, 5, 3)):
        old = clustered_schema(n_clusters, cluster_size, seed=seed)
        pipeline = Pipeline(old, CONFIG)
        _ = pipeline.support
        artifact = pipeline.compile()
        new = _single_cluster_edit(old)
        delta = SchemaDelta.between(old, new)

        delta_pipeline = Pipeline.recompile_from(artifact, delta, CONFIG)
        _ = delta_pipeline.support
        cold_pipeline = Pipeline(new, CONFIG)
        _ = cold_pipeline.support
        assert _verdicts(delta_pipeline) == _verdicts(cold_pipeline), (
            f"verdict drift on clustered({n_clusters}, {cluster_size}, "
            f"seed={seed})")


def test_registry_update_reports_partial_rebuild():
    from repro.engine import SchemaSession
    from repro.parser.printer import render_schema
    from repro.registry import SchemaRegistry

    old = clustered_schema(6, 4, seed=7)
    new = _single_cluster_edit(old)
    with SchemaSession(CONFIG) as session:
        registry = SchemaRegistry(session)
        first, _ = registry.put("bench", render_schema(old))
        second, report_obj = registry.put("bench", render_schema(new))
    assert first.version == 1 and second.version == 2
    report = report_obj.to_json()
    assert report["mode"] == "delta"
    clusters = report["clusters"]
    assert clusters["rebuilt"] == 1
    assert clusters["reused"] == clusters["total"] - 1


if __name__ == "__main__":
    pytest.main([__file__, "-v", "-s"])
