"""Closed-loop load generator for the asyncio query service.

Drives ``repro serve`` the way a fleet of real clients would: N
concurrent keep-alive connections, each issuing requests back-to-back
(closed loop — a new request starts only when the previous response
lands), optionally pipelining batches of requests per write.  Raw
sockets and a minimal HTTP/1.1 response parser keep the client cheap
enough that the server, not the generator, is the bottleneck.

Importable (``import loadgen``; ``benchmarks/conftest.py`` puts this
directory on ``sys.path``) and runnable as a CLI for CI smoke tests::

    python benchmarks/loadgen.py --port 8321 --connections 100 \
        --requests 20 --expect-status 200

The CLI exits non-zero on transport errors, unexpected statuses, or
malformed v1 envelopes, and prints a JSON summary to stdout.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

_RECV_LIMIT = 1 << 20


@dataclass
class LoadReport:
    """Aggregated outcome of one :func:`run_load` drive."""

    requests: int = 0
    transport_errors: int = 0
    statuses: Dict[int, int] = field(default_factory=dict)
    envelope_violations: int = 0
    elapsed_s: float = 0.0
    latencies_ms: List[float] = field(default_factory=list)

    @property
    def rps(self) -> float:
        return self.requests / self.elapsed_s if self.elapsed_s else 0.0

    def percentile_ms(self, fraction: float) -> float:
        if not self.latencies_ms:
            return 0.0
        ordered = sorted(self.latencies_ms)
        index = min(len(ordered) - 1,
                    max(0, round(fraction * (len(ordered) - 1))))
        return ordered[index]

    def summary(self) -> dict:
        return {
            "requests": self.requests,
            "elapsed_s": self.elapsed_s,
            "rps": self.rps,
            "statuses": {str(k): v for k, v in sorted(self.statuses.items())},
            "transport_errors": self.transport_errors,
            "envelope_violations": self.envelope_violations,
            "p50_ms": self.percentile_ms(0.50),
            "p90_ms": self.percentile_ms(0.90),
            "p99_ms": self.percentile_ms(0.99),
            "max_ms": max(self.latencies_ms) if self.latencies_ms else 0.0,
        }


def check_envelope(payload: object) -> bool:
    """True when ``payload`` is a structurally sound v1 envelope.

    A deliberately self-contained mirror of ``tests/wire.py`` so the
    generator stays importable without the test package (CI calls it as
    a bare script).
    """
    if not isinstance(payload, dict):
        return False
    if set(payload) - {"api_version", "request_id", "ok", "data", "error"}:
        return False
    if payload.get("api_version") != 1:
        return False
    if not isinstance(payload.get("request_id"), str):
        return False
    ok = payload.get("ok")
    if not isinstance(ok, bool):
        return False
    if ok:
        return "data" in payload and "error" not in payload
    error = payload.get("error")
    return (isinstance(error, dict) and "data" not in payload
            and {"code", "sysexit", "message"} <= set(error))


def build_request(method: str, path: str, body: Optional[bytes],
                  headers: Tuple[Tuple[str, str], ...] = ()) -> bytes:
    payload = body or b""
    lines = [f"{method} {path} HTTP/1.1", "Host: loadgen",
             f"Content-Length: {len(payload)}"]
    lines += [f"{name}: {value}" for name, value in headers]
    return "\r\n".join(lines).encode("ascii") + b"\r\n\r\n" + payload


async def _read_response(reader: asyncio.StreamReader,
                         parse_body: bool = True) -> Tuple[int, object]:
    head = await reader.readuntil(b"\r\n\r\n")
    status = int(head[9:12])
    length = 0
    lower = head.lower()
    marker = lower.find(b"content-length:")
    if marker >= 0:
        end = lower.index(b"\r\n", marker)
        length = int(head[marker + 15:end])
    raw = await reader.readexactly(length) if length else b""
    if not parse_body:
        return status, None
    try:
        payload = json.loads(raw) if raw else None
    except ValueError:
        payload = None
    return status, payload


async def _drive_connection(host: str, port: int, raw_request: bytes,
                            requests: int, pipeline: int,
                            report: LoadReport,
                            lock: asyncio.Lock,
                            timeout: float,
                            validate: str) -> None:
    statuses: Dict[int, int] = {}
    latencies: List[float] = []
    violations = 0
    completed = 0
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port, limit=_RECV_LIMIT),
            timeout=timeout)
        try:
            remaining = requests
            while remaining > 0:
                batch = min(pipeline, remaining)
                start = time.perf_counter()
                writer.write(raw_request * batch)
                await asyncio.wait_for(writer.drain(), timeout=timeout)
                for _ in range(batch):
                    parse = (validate == "all"
                             or (validate == "first" and completed == 0))
                    status, payload = await asyncio.wait_for(
                        _read_response(reader, parse_body=parse),
                        timeout=timeout)
                    latencies.append(
                        (time.perf_counter() - start) * 1000.0)
                    statuses[status] = statuses.get(status, 0) + 1
                    if parse and not check_envelope(payload):
                        violations += 1
                    completed += 1
                remaining -= batch
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
    except (ConnectionError, OSError, asyncio.TimeoutError,
            asyncio.IncompleteReadError):
        async with lock:
            report.transport_errors += 1
    async with lock:
        report.requests += completed
        report.envelope_violations += violations
        report.latencies_ms.extend(latencies)
        for status, count in statuses.items():
            report.statuses[status] = report.statuses.get(status, 0) + count


async def _run(host: str, port: int, raw_request: bytes, connections: int,
               requests_per_connection: int, pipeline: int,
               timeout: float, validate: str) -> LoadReport:
    report = LoadReport()
    lock = asyncio.Lock()
    start = time.perf_counter()
    await asyncio.gather(*(
        _drive_connection(host, port, raw_request, requests_per_connection,
                          pipeline, report, lock, timeout, validate)
        for _ in range(connections)))
    report.elapsed_s = time.perf_counter() - start
    return report


def run_load(host: str, port: int, *, connections: int = 10,
             requests_per_connection: int = 50, pipeline: int = 1,
             method: str = "POST", path: str = "/v1/satisfiable",
             body: Optional[dict] = None,
             headers: Tuple[Tuple[str, str], ...] = (),
             timeout: float = 30.0, validate: str = "all") -> LoadReport:
    """Drive the service and return an aggregated :class:`LoadReport`.

    Closed loop: every connection keeps exactly ``pipeline`` requests in
    flight (1 = strict request/response lockstep).  Latencies are
    measured from each batch's write to each response's arrival.

    ``validate`` controls envelope checking on the client: ``"all"``
    parses and checks every body, ``"first"`` only each connection's
    first (the rest are drained by Content-Length alone — the right mode
    for throughput runs, where client-side JSON parsing would otherwise
    compete with the server for the same core), ``"none"`` skips it.
    """
    if validate not in ("all", "first", "none"):
        raise ValueError(f"unknown validate mode {validate!r}")
    raw = build_request(
        method, path,
        json.dumps(body).encode() if body is not None else None, headers)
    return asyncio.run(_run(host, port, raw, connections,
                            requests_per_connection, pipeline, timeout,
                            validate))


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="closed-loop load generator for repro serve")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--connections", type=int, default=10)
    parser.add_argument("--requests", type=int, default=50,
                        help="requests per connection")
    parser.add_argument("--pipeline", type=int, default=1,
                        help="requests kept in flight per connection")
    parser.add_argument("--method", default="POST")
    parser.add_argument("--path", default="/v1/satisfiable")
    parser.add_argument("--body", default=None,
                        help="JSON request body (default: a tiny "
                             "satisfiability query)")
    parser.add_argument("--timeout", type=float, default=30.0)
    parser.add_argument("--validate", choices=("all", "first", "none"),
                        default="all",
                        help="how many response bodies to envelope-check")
    parser.add_argument("--expect-status", type=int, action="append",
                        default=None,
                        help="acceptable statuses (repeatable; default "
                             "200, plus 429/503 which a loaded service "
                             "may return gracefully)")
    args = parser.parse_args(argv)

    if args.body is not None:
        body = json.loads(args.body)
    elif args.method == "POST":
        body = {"schema": "class A isa not B endclass class B endclass",
                "formula": "A and not B"}
    else:
        body = None
    expected = set(args.expect_status or (200, 429, 503))

    report = run_load(args.host, args.port, connections=args.connections,
                      requests_per_connection=args.requests,
                      pipeline=args.pipeline, method=args.method,
                      path=args.path, body=body, timeout=args.timeout,
                      validate=args.validate)
    summary = report.summary()
    unexpected = {status: count for status, count in report.statuses.items()
                  if status not in expected}
    summary["unexpected_statuses"] = {
        str(k): v for k, v in sorted(unexpected.items())}
    print(json.dumps(summary, indent=2, sort_keys=True))

    if report.transport_errors:
        print(f"FAIL: {report.transport_errors} transport errors",
              file=sys.stderr)
        return 1
    if report.envelope_violations:
        print(f"FAIL: {report.envelope_violations} malformed envelopes",
              file=sys.stderr)
        return 1
    if unexpected:
        print(f"FAIL: unexpected statuses {unexpected}", file=sys.stderr)
        return 1
    if report.requests != args.connections * args.requests:
        print("FAIL: not every request completed", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
