"""Benchmark: the transactional instance store under load.

Not a paper experiment — a systems-quality check that the satisfaction
conditions of Section 2.3 are enforceable at interactive rates on realistic
database sizes: bulk loads inside one transaction, per-transaction
validation cost as the state grows, and the cost of full model checking.
"""

import pytest

from benchlib import render_table, timed
from repro.parser.parser import parse_schema
from repro.semantics.database import Database


def registrar_schema():
    return parse_schema("""
        class Person endclass
        class Student isa Person and not Professor
            participates in Enrollment[enrolls] : (0, 6)
        endclass
        class Professor isa Person endclass
        class Course
            isa not Person
            attributes taught_by : (1, 1) Professor
            participates in Enrollment[enrolled_in] : (0, 100)
        endclass
        relation Enrollment(enrolled_in, enrolls)
            constraints (enrolled_in : Course); (enrolls : Student)
        endrelation
    """)


def load(db: Database, n_students: int, n_courses: int) -> None:
    with db.transaction():
        for c in range(n_courses):
            professor = f"prof{c}"
            db.insert(professor, "Person", "Professor")
            db.insert(f"course{c}", "Course")
            db.set_attribute("taught_by", f"course{c}", professor)
        for s in range(n_students):
            name = f"student{s}"
            db.insert(name, "Person", "Student")
            db.add_tuple("Enrollment", enrolled_in=f"course{s % n_courses}",
                         enrolls=name)


@pytest.mark.experiment("database")
def test_bulk_load_transaction(benchmark):
    """One transaction loading a few hundred objects, validated on commit."""

    def run():
        db = Database(registrar_schema())
        load(db, n_students=200, n_courses=20)
        return db

    db = benchmark(run)
    assert db.is_consistent()
    assert len(db) == 200 + 2 * 20


@pytest.mark.experiment("database")
def test_validation_cost_vs_size(benchmark):
    """Full validation cost as the database grows."""

    def measure():
        rows = []
        for n_students in (50, 100, 200, 400):
            db = Database(registrar_schema())
            load(db, n_students=n_students, n_courses=max(n_students // 10, 1))
            seconds, violations = timed(db.violations)
            assert not violations
            rows.append((len(db), seconds))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(render_table(
        "Instance store — full validation vs database size",
        ["objects", "seconds"], rows))


@pytest.mark.experiment("database")
def test_rejected_transaction_cost(benchmark):
    """Rollback price: a violating transaction on a populated store."""
    from repro.semantics.database import IntegrityError

    db = Database(registrar_schema())
    load(db, n_students=100, n_courses=10)

    def run():
        try:
            with db.transaction():
                db.insert("rogue", "Student")  # Student without Person
        except IntegrityError:
            return True
        return False

    assert benchmark(run)
    assert "rogue" not in db
