"""Experiment "Figures 1 & 2": end-to-end reasoning over the paper's own
schemas.

The paper has no measurement tables — its two figures are the running
example.  We regenerate them as workloads: parse the exact schemas, decide
coherence, and (for Figure 2) re-derive every fact the paper's prose
asserts about the example.  The benchmark times the full pipeline.
"""

import pytest

from repro import AttrRef, Card, Reasoner, inv, parse_schema
from repro.reasoner import (
    classify,
    implied_attribute_bounds,
    implied_disjoint,
    implies_isa,
)
from repro.workloads import FIGURE_1_SOURCE, FIGURE_2_SOURCE


def reason_over(source: str):
    schema = parse_schema(source)
    reasoner = Reasoner(schema)
    report = reasoner.check_coherence()
    return reasoner, report


@pytest.mark.experiment("figure1")
def test_figure1_pipeline(benchmark):
    reasoner, report = benchmark(reason_over, FIGURE_1_SOURCE)
    assert report.is_coherent
    # Figure 1 has no cardinality constraints: the linear system is empty.
    assert reasoner.stats().psi_constraints == 0


@pytest.mark.experiment("figure2")
def test_figure2_pipeline(benchmark):
    reasoner, report = benchmark(reason_over, FIGURE_2_SOURCE)
    assert report.is_coherent
    stats = reasoner.stats()
    assert stats.compound_classes == 30
    assert stats.psi_constraints > 0


@pytest.mark.experiment("figure2")
def test_figure2_paper_claims(benchmark):
    """Every fact the paper states about Figure 2, re-derived."""

    def derive():
        reasoner = Reasoner(parse_schema(FIGURE_2_SOURCE))
        return {
            "student_not_professor": implied_disjoint(
                reasoner, "Student", "Professor"),
            "grad_is_student": implies_isa(reasoner, "Grad_Student", "Student"),
            "grad_not_professor": implied_disjoint(
                reasoner, "Grad_Student", "Professor"),
            "adv_is_course": implies_isa(reasoner, "Adv_Course", "Course"),
            "course_one_teacher": implied_attribute_bounds(
                reasoner, "Course", AttrRef("taught_by")),
            "prof_teaches_1_2": implied_attribute_bounds(
                reasoner, "Professor", inv("taught_by")),
            "grad_teaches_0_1": implied_attribute_bounds(
                reasoner, "Grad_Student", inv("taught_by")),
            "subsumptions": classify(reasoner).subsumptions,
        }

    facts = benchmark(derive)
    assert facts["student_not_professor"]
    assert facts["grad_is_student"]
    assert facts["grad_not_professor"]
    assert facts["adv_is_course"]
    assert facts["course_one_teacher"] == Card(1, 1)
    assert facts["prof_teaches_1_2"] == Card(1, 2)
    assert facts["grad_teaches_0_1"] == Card(0, 1)
    assert ("Grad_Student", "Person") in facts["subsumptions"]
