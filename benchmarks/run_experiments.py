#!/usr/bin/env python3
"""Regenerate every experiment series recorded in EXPERIMENTS.md.

Runs the same workloads as the pytest benchmarks, but as a plain script so
the tables land on stdout, ready to be pasted into EXPERIMENTS.md:

    python benchmarks/run_experiments.py

One section per experiment of the DESIGN.md index (Figures 1–2,
Theorems 4.1–4.6, Section 4.4), plus the expansion-pipeline section
covering the indexed Ψ_S construction and binding-endpoint pruning.

``--only KEYWORD`` restricts the run to sections whose title contains the
keyword (case-insensitive); ``--json PATH`` additionally records every
table into a machine-readable document (see ``benchlib.Recorder``), the
format committed as ``BENCH_expansion.json``:

    python benchmarks/run_experiments.py --only expansion \\
        --json BENCH_expansion.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional

sys.path.insert(0, str(Path(__file__).resolve().parent))

from benchlib import Recorder, best_of, render_table, timed

RECORDER: Optional[Recorder] = None


def emit(title, headers, rows) -> None:
    """Print one table and, when ``--json`` is active, record it."""
    print(render_table(title, headers, rows))
    if RECORDER is not None:
        RECORDER.record(title, headers, rows)

from repro import AttrRef, Reasoner, inv, parse_schema
from repro.engine import EngineConfig, SchemaSession
from repro.expansion.enumerate import naive_compound_classes, strategic_compound_classes
from repro.expansion.expansion import build_expansion
from repro.linear.support import acceptable_support
from repro.linear.system import build_system
from repro.reasoner.implication import implied_attribute_bounds, implied_disjoint
from repro.reasoner.transform import reify_nonbinary_relations
from repro.reductions import (
    IntersectionPattern,
    cnf_to_schema,
    dpll_satisfiable,
    machine_to_schema,
    parity_machine,
    pattern_to_schema,
    random_cnf,
)
from repro.workloads import FIGURE_1_SOURCE, FIGURE_2_SOURCE
from repro.workloads.generators import adversarial_schema, clustered_schema, hierarchy_schema


def figures() -> None:
    session = SchemaSession()
    rows = []
    for label, source in (("Figure 1", FIGURE_1_SOURCE),
                          ("Figure 2", FIGURE_2_SOURCE)):
        schema = parse_schema(source)
        reasoner = session.reasoner(schema)
        seconds, report = timed(reasoner.check_coherence)
        stats = reasoner.stats()
        rows.append((label, stats.classes, stats.compound_classes,
                     stats.psi_unknowns, stats.psi_constraints,
                     report.is_coherent, seconds))
    emit(
        "Figures 1 & 2 — end-to-end reasoning over the paper's schemas",
        ["schema", "classes", "compounds", "unknowns", "disequations",
         "coherent", "seconds"], rows)

    # Re-parsing Figure 2 hits the session's fingerprint cache: the warm
    # pipeline (expansion + support) is reused for the implied facts.
    reasoner = session.reasoner(parse_schema(FIGURE_2_SOURCE))
    facts = [
        ("Student ⟂ Professor", implied_disjoint(reasoner, "Student", "Professor")),
        ("Grad_Student ⟂ Professor", implied_disjoint(reasoner, "Grad_Student", "Professor")),
        ("taught_by per Course", implied_attribute_bounds(reasoner, "Course", AttrRef("taught_by"))),
        ("courses per Professor", implied_attribute_bounds(reasoner, "Professor", inv("taught_by"))),
        ("courses per Grad_Student", implied_attribute_bounds(reasoner, "Grad_Student", inv("taught_by"))),
    ]
    print()
    emit("Figure 2 — implied facts",
                       ["fact", "derived value"], facts)


def theorem41() -> None:
    machine = parity_machine()
    rows = []
    for space in (1, 2, 3):
        word = "1" * (space - 1)
        time_bound = space + 1
        reduction = machine_to_schema(machine, word, time_bound, space)
        reasoner = Reasoner(reduction.schema)
        seconds, verdict = timed(
            lambda r=reasoner, t=reduction.target: r.is_satisfiable(t))
        rows.append((space, len(reduction.schema.class_symbols),
                     len(reasoner.expansion.compound_classes),
                     verdict, machine.accepts(word, time_bound, space),
                     seconds))
    emit(
        "Theorem 4.1 — TM reduction (parity machine), growing tape",
        ["space S", "classes", "compounds", "schema verdict",
         "machine verdict", "seconds"], rows)


def theorem42() -> None:
    rows = []
    for n_vars in (4, 6, 8, 10):
        formula = random_cnf(n_vars, n_clauses=n_vars * 2, seed=7)
        schema = cnf_to_schema(formula)
        reasoner = Reasoner(schema)
        seconds, verdict = timed(lambda r=reasoner: r.is_satisfiable("World"))
        rows.append((n_vars, len(schema.class_symbols),
                     len(reasoner.expansion.compound_classes),
                     verdict, dpll_satisfiable(formula) is not None, seconds))
    emit(
        "Theorem 4.2a — 3SAT→CAR, ratio-2 random formulas",
        ["vars", "classes", "compounds", "schema verdict", "DPLL verdict",
         "seconds"], rows)

    rows = []
    for n in (2, 3):
        matrix = [[2 if i == j else 1 for j in range(n)] for i in range(n)]
        pattern = IntersectionPattern.of(matrix)
        schema = pattern_to_schema(pattern)
        reasoner = Reasoner(schema)
        seconds, verdict = timed(lambda r=reasoner: r.is_satisfiable("W"))
        rows.append((n, len(schema.class_symbols),
                     len(reasoner.expansion.compound_classes), verdict,
                     seconds))
    infeasible = IntersectionPattern.of([[2, 3], [3, 3]])
    reasoner = Reasoner(pattern_to_schema(infeasible))
    seconds, verdict = timed(lambda: reasoner.is_satisfiable("W"))
    rows.append(("2 (infeasible)", len(reasoner.schema.class_symbols),
                 len(reasoner.expansion.compound_classes), verdict, seconds))
    print()
    emit(
        "Theorem 4.2b — Intersection Pattern (union- & negation-free)",
        ["n", "classes", "compounds", "W satisfiable", "seconds"], rows)


def theorem43() -> None:
    from repro.core.cardinality import Card
    from repro.core.formulas import Lit
    from repro.core.schema import Attr, ClassDef, Schema

    def cluster(i: int, fan: int):
        a, b = f"A{i}", f"B{i}"
        return [
            ClassDef(a, isa=~Lit(b),
                     attributes=[Attr(f"link{i}", Card(fan, fan), b)]),
            ClassDef(b, attributes=[Attr(inv(f"link{i}"), Card(1, 1), a)]),
        ]

    rows = []
    for n_clusters in (2, 4, 8, 16, 32):
        classes = []
        for i in range(n_clusters):
            classes.extend(cluster(i, fan=2 + (i % 3)))
        system = build_system(build_expansion(Schema(classes)))
        seconds, _ = timed(lambda s=system: acceptable_support(s))
        rows.append((n_clusters, system.size(), system.n_unknowns(),
                     system.n_constraints(), seconds))
    emit(
        "Theorem 4.3 — acceptable-solution check vs |Psi_S|",
        ["clusters", "|Psi_S|", "unknowns", "disequations", "seconds"], rows)


def theorem44() -> None:
    rows = []
    for n_classes in (6, 8, 10, 12, 14):
        schema = adversarial_schema(n_classes, seed=4)
        reasoner = Reasoner(schema)
        seconds, _ = timed(lambda r=reasoner: r.satisfiable_classes())
        stats = reasoner.stats()
        rows.append((n_classes, stats.compound_classes,
                     stats.expansion_size, seconds))
    emit(
        "Theorem 4.4 — adversarial single-cluster schemas",
        ["classes", "compounds", "expansion", "seconds"], rows)


def theorem45() -> None:
    sys.path.insert(0, str(Path(__file__).resolve().parent))
    from bench_theorem45_arity import kary_schema

    rows = []
    for arity in (2, 3, 4, 5):
        schema = kary_schema(arity)
        before = build_expansion(schema)
        before_rel = sum(len(v) for v in before.compound_relations.values())
        result = reify_nonbinary_relations(schema)
        after = build_expansion(result.schema)
        after_rel = sum(len(v) for v in after.compound_relations.values())
        rows.append((arity, before_rel, before.size(), after_rel,
                     after.size()))
    emit(
        "Theorem 4.5 — K-ary expansion, original vs reified",
        ["arity K", "K-ary comp. rels", "expansion", "binary comp. rels",
         "reified expansion"], rows)


def theorem46() -> None:
    rows = []
    for n_clusters in (1, 2, 3, 4, 5, 6):
        schema = clustered_schema(n_clusters, 3, seed=11)
        naive_seconds, naive = timed(
            lambda s=schema: naive_compound_classes(s))
        strategic_seconds, strategic = timed(
            lambda s=schema: strategic_compound_classes(s))
        rows.append((n_clusters * 3, len(naive), naive_seconds,
                     len(strategic), strategic_seconds))
    emit(
        "Theorem 4.6 / §4.3 — naive vs strategic enumeration",
        ["classes", "naive compounds", "naive s", "strategic compounds",
         "strategic s"], rows)


def section44() -> None:
    from repro.expansion.enumerate import compound_classes

    rows = []
    for depth, branching in ((2, 2), (3, 2), (3, 3), (4, 3), (5, 3)):
        schema = hierarchy_schema(depth, branching)
        n_classes = len(schema.class_symbols)
        seconds, compounds = timed(
            lambda s=schema: compound_classes(s, "auto"))
        rows.append((f"{depth}/{branching}", n_classes, len(compounds),
                     seconds))
    emit(
        "Section 4.4 — generalization hierarchies (depth/branching)",
        ["shape", "classes", "compounds", "seconds"], rows)


def synthesis() -> None:
    from repro.reasoner.satisfiability import Reasoner
    from repro.semantics.checker import is_model
    from repro.synthesis.builder import synthesize_model
    from repro.workloads.generators import cardinality_chain_schema

    schema = cardinality_chain_schema(2, fan_out=2)
    reasoner = Reasoner(schema)
    rows = []
    for scale in (1, 2, 4, 8):
        seconds, report = timed(
            lambda s=scale: synthesize_model(reasoner, target="L0", scale=s))
        assert is_model(report.interpretation, schema)
        rows.append((scale, report.n_objects, seconds))
    emit(
        "Theorem 3.3 (constructive) — synthesis vs witness scale",
        ["scale", "objects", "seconds"], rows)
    rows = []
    for length in (1, 2, 3, 4):
        chain = cardinality_chain_schema(length, fan_out=2)
        seconds, report = timed(
            lambda c=chain: synthesize_model(Reasoner(c), target="L0"))
        rows.append((length, report.n_objects, seconds))
    print()
    emit(
        "Theorem 3.3 (constructive) — synthesis vs chain depth",
        ["chain length", "objects", "seconds"], rows)


def ablations() -> None:
    from repro.linear.support import acceptable_support
    from repro.workloads.paper_schemas import figure1_schema

    expansion = build_expansion(parse_schema(FIGURE_2_SOURCE))
    acceptable_support(expansion)  # warm the solver path
    rows = []
    for label, kwargs in (
            ("baseline", {}),
            ("no propagation", {"use_propagation": False}),
            ("no column merging", {"merge_columns": False})):
        seconds = min(timed(lambda k=kwargs: acceptable_support(
            expansion, **k))[0] for _ in range(3))
        rows.append((label, seconds))
    emit(
        "Ablations — support computation on Figure 2",
        ["variant", "seconds"], rows)
    rows = []
    for label, schema in (("Figure 1", figure1_schema()),
                          ("Figure 2", parse_schema(FIGURE_2_SOURCE))):
        filtered = build_expansion(schema).size()
        verbatim = build_expansion(schema, include_unconstrained=True).size()
        rows.append((label, filtered, verbatim))
    print()
    emit(
        "Ablations — binding-entry filtering (expansion size)",
        ["schema", "filtered", "Definition 3.1 verbatim"], rows)


def expansion_pipeline() -> None:
    from dataclasses import replace

    from repro.core.formulas import Clause, Formula, Lit
    from repro.workloads.generators import random_schema, wide_attribute_schema

    # Indexed endpoint lookups vs linear scans during Ψ_S construction.
    # wide_attribute_schema concentrates quadratically many compound
    # attributes on linearly many compound classes, the scans' worst case.
    rows = []
    for n in (60, 120, 200, 260):
        expansion = build_expansion(wide_attribute_schema(n))
        scanning = replace(expansion, indexed=False)
        expansion.attributes_with_left("link", frozenset(("C0",)))  # warm index
        indexed_s = best_of(lambda e=expansion: build_system(e), rounds=5)
        scan_s = best_of(lambda e=scanning: build_system(e), rounds=2)
        rows.append((n, len(expansion.compound_classes), expansion.size(),
                     indexed_s, scan_s,
                     scan_s / indexed_s if indexed_s else 0.0))
    emit("Ψ_S construction — endpoint indexes vs linear scans",
         ["chain n", "compounds", "expansion", "indexed s", "scan s",
          "speedup"], rows)

    # Binding-endpoint pruning vs the Definition 3.1 verbatim enumeration.
    rows = []
    for n in (40, 80, 120):
        schema = wide_attribute_schema(n, binding=False)
        pruned_s, pruned = timed(lambda s=schema: build_expansion(s))
        verbatim_s, verbatim = timed(
            lambda s=schema: build_expansion(s, include_unconstrained=True))
        rows.append((n, pruned.size(), pruned_s, verbatim.size(), verbatim_s))
    print()
    emit("Enumeration — binding-endpoint pruning vs Definition 3.1 verbatim",
         ["chain n", "pruned size", "pruned s", "verbatim size",
          "verbatim s"], rows)

    # Incremental augmented queries: the seeding reuses untouched clusters'
    # compound classes and extends the tables by one row, so the measured
    # quantity is the augmented *pipeline build* (tables + enumeration);
    # verdicts are checked against full rebuilds end to end.
    from repro.core.schema import ClassDef

    rows = []
    for n_clusters, cluster_size in ((6, 4), (10, 4), (8, 5)):
        schema = clustered_schema(n_clusters, cluster_size, seed=5)
        names = sorted(schema.class_symbols)
        base = Reasoner(schema, config=EngineConfig(strategy="strategic"))
        base.support  # warm the base pipeline outside the timing
        cdefs = [
            ClassDef(base.fresh_class_name(f"Q{i}"),
                     isa=Formula((Clause((Lit(names[i]),)),
                                  Clause((Lit(names[-1 - i]),)))))
            for i in range(8)
        ]
        seeded_s, _ = timed(lambda: [
            base.augmented_with(cdef).expansion for cdef in cdefs])
        cold_s, _ = timed(lambda: [
            Reasoner(schema.with_class(cdef), config=EngineConfig(strategy="strategic")).expansion
            for cdef in cdefs])
        identical = all(
            base.augmented_with(cdef).is_satisfiable(cdef.name)
            == Reasoner(schema.with_class(cdef),
                        strategy="strategic").is_satisfiable(cdef.name)
            for cdef in cdefs)
        rows.append((n_clusters * cluster_size, len(cdefs), seeded_s,
                     cold_s, identical))
    print()
    emit("Augmented queries — incremental seeding vs cold rebuilds "
         "(pipeline build)",
         ["classes", "queries", "seeded s", "cold s",
          "identical verdicts"], rows)

    # Verdict equivalence: naive vs strategic vs indexed-off pipelines.
    rows = []
    for seed in range(6):
        schema = random_schema(6, seed=seed)
        verdict_sets = []
        for strategy in ("naive", "strategic"):
            reasoner = Reasoner(schema, config=EngineConfig(strategy=strategy))
            verdict_sets.append(frozenset(reasoner.satisfiable_classes()))
        scanning = replace(build_expansion(schema), indexed=False)
        populated = set(
            acceptable_support(scanning).supported_compound_classes())
        verdict_sets.append(frozenset(
            name for name in schema.class_symbols
            if any(name in members for members in populated)))
        rows.append((seed, len(verdict_sets[0]),
                     len(set(verdict_sets)) == 1))
    print()
    emit("Verdict equivalence — naive vs strategic vs unindexed",
         ["seed", "satisfiable classes", "identical"], rows)


def session_reuse() -> None:
    from repro.core.formulas import Clause, Formula, Lit
    from repro.workloads.generators import random_schema

    # Warm vs cold: repeated class-satisfiability queries against one
    # schema.  Cold pays a full Reasoner construction (expansion + Ψ_S +
    # support) per query; warm queries are membership tests against the
    # session's cached pipeline, found by fingerprint.
    rows = []
    for n_clusters, cluster_size in ((4, 3), (6, 4), (8, 4)):
        schema = clustered_schema(n_clusters, cluster_size, seed=9)
        names = sorted(schema.class_symbols)
        queries = [names[i % len(names)] for i in range(24)]
        with SchemaSession() as session:
            cold_s, cold = timed(lambda: [
                Reasoner(schema).is_satisfiable(q) for q in queries])
            session.satisfiable(schema, queries[0])  # the one cold build
            warm_s, warm = timed(lambda: [
                session.satisfiable(schema, q) for q in queries])
        rows.append((n_clusters * cluster_size, len(queries), cold_s, warm_s,
                     cold_s / warm_s if warm_s else 0.0, warm == cold))
    emit("Session reuse — warm cached pipeline vs cold per-query reasoners",
         ["classes", "queries", "cold s", "warm s", "speedup",
          "identical verdicts"], rows)

    # Batched cross-cluster formula queries: check_many reuses the one
    # support computation plus the incremental augmented-query seeding.
    rows = []
    for n_clusters, cluster_size in ((6, 4), (8, 5)):
        schema = clustered_schema(n_clusters, cluster_size, seed=5)
        names = sorted(schema.class_symbols)
        formulas = [
            Formula((Clause((Lit(names[i]),)),
                     Clause((Lit(names[-1 - i]),))))
            for i in range(6)
        ]
        with SchemaSession(EngineConfig(strategy="strategic")) as session:
            session.reasoner(schema).support  # warm the pipeline
            warm_s, warm = timed(lambda: session.check_many(schema, formulas))
        cold_s, cold = timed(lambda: [
            Reasoner(schema, config=EngineConfig(strategy="strategic")).is_formula_satisfiable(f)
            for f in formulas])
        rows.append((n_clusters * cluster_size, len(formulas), cold_s,
                     warm_s, cold_s / warm_s if warm_s else 0.0,
                     warm == cold))
    print()
    emit("Session reuse — batched formula queries (check_many) vs cold",
         ["classes", "formulas", "cold s", "warm s", "speedup",
          "identical verdicts"], rows)

    # The fingerprint LRU under an evolving fleet of schemas: six distinct
    # schemas through a limit-4 cache, then two repeats of the most recent.
    with SchemaSession(EngineConfig(session_cache_limit=4)) as session:
        schemas = [random_schema(5, seed=seed) for seed in range(6)]
        for schema in schemas + schemas[-2:]:
            session.check_coherence(schema)
        info = session.cache_info()
    print()
    emit("Session reuse — fingerprint LRU across an evolving schema fleet",
         ["schemas seen", "cache limit", "hits", "misses", "evictions",
          "resident"],
         [(len(schemas) + 2, info.limit, info.hits, info.misses,
           info.evictions, info.size)])


def parallel_batch() -> None:
    import os

    from repro.parser.printer import render_schema
    from repro.workloads.generators import adversarial_schema

    # Serial check_many vs the batch executor at growing worker counts.
    # Eight independent adversarial schemas, one shard each: embarrassingly
    # parallel work, so the table exposes exactly what process fan-out and
    # per-worker pipeline warming cost and buy on this host.
    queries = []
    for index in range(8):
        schema = adversarial_schema(16, seed=index)
        queries.append({"schema": render_schema(schema),
                        "formula": sorted(schema.class_symbols)[0]})
    # One untimed warm-up run: the first pipeline execution in a fresh
    # interpreter pays one-time specialization costs that forked workers
    # inherit for free, which would otherwise inflate the speedup.
    with SchemaSession() as warmup:
        warmup.run_batch(queries[:1], jobs=1, mode="serial")
    cores = os.cpu_count() or 1
    # On a single-core host a process pool can only lose (pure overhead,
    # no parallelism), so recording its sub-1x rows would read as an
    # executor regression; record the serial baseline and say why.
    job_points = (1, 2, 4) if cores >= 2 else (1,)
    rows = []
    serial_s = None
    for jobs in job_points:
        with SchemaSession() as session:
            mode = "serial" if jobs == 1 else "process"
            seconds, outcomes = timed(
                lambda s=session, m=mode, j=jobs: s.run_batch(
                    queries, jobs=j, mode=m))
        if serial_s is None:
            serial_s = seconds
        rows.append((jobs, mode, seconds, serial_s / seconds,
                     sum(o.ok for o in outcomes)))
    emit(f"Parallel batch — 8 adversarial schemas, serial vs process pool "
         f"({cores} cores)",
         ["jobs", "mode", "seconds", "speedup", "ok"], rows)
    if cores < 2:
        print(f"  (process-pool rows skipped: {cores}-core host, "
              f"no parallelism to measure)")

    # Cold-start cost: rehydrating a precompiled CompiledSchema snapshot
    # vs running the full Phase-1/Phase-2 build from source — the saving
    # every artifact-cache hit (pool worker, CLI rerun, service boot)
    # banks.  Build times are best-of-3 on a warm interpreter; loads are
    # best-of-5 (they are tiny and GC-sensitive).
    import pickle as pickle_module

    from repro.engine import EngineConfig as _EngineConfig
    from repro.engine import Pipeline as _Pipeline
    from repro.engine.artifact import _loads_without_gc

    cold_rows = []
    for seed in range(3):
        schema = adversarial_schema(16, seed=seed)
        config = _EngineConfig()

        def build(schema=schema, config=config):
            pipeline = _Pipeline(schema, config)
            pipeline.system
            return pipeline

        build_s = best_of(build, rounds=3)
        payload = pickle_module.dumps(build().compile(),
                                      protocol=pickle_module.HIGHEST_PROTOCOL)
        load_s = best_of(lambda: _loads_without_gc(payload), rounds=5)
        cold_rows.append((f"adversarial(16, seed={seed})", build_s, load_s,
                          build_s / load_s, len(payload)))
    print()
    emit("Cold start — full Phase-1/2 build vs artifact rehydration",
         ["schema", "build s", "load s", "speedup", "artifact bytes"],
         cold_rows)

    # Deadline responsiveness: a 50 ms budget against the Theorem 4.1
    # EXPTIME reduction must yield a timed-out outcome well under a
    # second, while its batch-mate still gets answered.
    reduction = machine_to_schema(parity_machine(), (0, 1, 0, 1), 6, 6)
    deadline_queries = [
        {"schema": render_schema(reduction.schema),
         "formula": str(reduction.target)},
        {"schema": "class A isa not B endclass class B endclass",
         "formula": "A"},
    ]
    with SchemaSession() as session:
        wall_s, outcomes = timed(
            lambda: session.run_batch(deadline_queries, deadline=0.05))
    hard, easy = outcomes
    print()
    emit("Parallel batch — 50 ms deadline vs EXPTIME reduction",
         ["query", "timed out", "steps", "duration s", "batch wall s"],
         [("EXPTIME reduction", hard.timed_out, hard.steps, hard.duration,
           wall_s),
          ("trivial batch-mate", easy.timed_out, easy.steps, easy.duration,
           wall_s)])


def query_answering() -> None:
    import json as json_module
    import urllib.error
    import urllib.request

    from repro.qa import QueryRewriter, certain_answers, parse_query
    from repro.qa.data import database_from_document
    from repro.reasoner.satisfiability import Reasoner as _Reasoner
    from repro.workloads.query_workloads import (
        query_workload,
        sample_database,
        taxonomy_schema,
    )

    # Warm rewrite cache vs cold saturation over growing taxonomies: the
    # cold side pays the specialize/eliminate/unify fixpoint plus the
    # subsumption pruning per query, the warm side an LRU lookup on the
    # canonical rendering.  The committed acceptance bar lives in
    # bench_query.py (WARM_SPEEDUP_BAR = 5x); these rows record the
    # actual ratios.
    # Shapes stay below ~16 classes: the taxonomy is one G_S cluster, and
    # the closure build's satisfiability probes (negated-filler classes)
    # defeat the genuine-hierarchy detection, so enumeration is
    # exponential in the cluster size.
    rows = []
    for branching, depth in ((2, 2), (3, 2), (2, 3)):
        schema = taxonomy_schema(branching, depth)
        closure = _Reasoner(schema).pipeline.closure_index()
        queries = [parse_query(source, schema)
                   for _, source in query_workload(schema, per_shape=4,
                                                   seed=3)]

        def run_cold(closure=closure, queries=queries):
            rewriter = QueryRewriter(closure)
            return [rewriter.rewrite(query) for query in queries]

        warm_rewriter = QueryRewriter(closure)
        results = [warm_rewriter.rewrite(query) for query in queries]
        cold_s = best_of(run_cold, rounds=3)
        warm_s = best_of(lambda r=warm_rewriter, q=queries: [
            r.rewrite(query) for query in q], rounds=3)
        rows.append((f"{branching}^{depth}",
                     len(schema.class_symbols), len(queries),
                     sum(len(r.disjuncts) for r in results),
                     sum(r.steps for r in results), cold_s, warm_s,
                     cold_s / warm_s if warm_s else 0.0))
    emit("Query rewriting — warm cache vs cold saturation "
         "(star/chain/boolean workload)",
         ["taxonomy", "classes", "queries", "disjuncts", "steps",
          "cold s", "warm s", "speedup"], rows)

    # Certain answers end to end: rewriting + plain evaluation over a
    # seeded open-world database, per query shape.
    schema = taxonomy_schema(2, 3)
    reasoner = _Reasoner(schema)
    rewriter = QueryRewriter(reasoner.pipeline.closure_index())
    database = database_from_document(
        schema, sample_database(schema, 24, seed=5))
    shape_rows: dict = {}
    for shape, source in query_workload(schema, per_shape=5, seed=5):
        query = parse_query(source, schema)
        seconds, answer = timed(lambda q=query: certain_answers(
            rewriter, q, database, reasoner=reasoner))
        stats = shape_rows.setdefault(shape, [0, 0, 0, 0.0])
        stats[0] += 1
        stats[1] += answer.disjuncts
        stats[2] += (int(bool(answer.boolean)) if answer.is_boolean
                     else len(answer.answers))
        stats[3] += seconds
    print()
    emit("Certain answers — rewriting + evaluation over a seeded database "
         "(24 objects)",
         ["shape", "queries", "disjuncts", "answers", "total s"],
         [(shape, *stats) for shape, stats in sorted(shape_rows.items())])

    # The wire path: PUT /v1/schemas once, then POST /v1/query by
    # schema_ref — cold miss, then result-cache hits.
    from repro.parser.printer import render_schema
    from repro.service import ReproService, ServiceConfig

    def call(base, path, body, method="POST"):
        request = urllib.request.Request(
            base + path, data=json_module.dumps(body).encode(),
            method=method)
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json_module.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json_module.loads(error.read())

    source = render_schema(taxonomy_schema(2, 2))
    rows = []
    with ReproService(ServiceConfig(port=0)) as service:
        base = f"http://{service.host}:{service.port}"
        status, _ = call(base, "/v1/schemas/bench", {"schema": source},
                         method="PUT")
        assert status == 201  # stored fresh
        body = {"schema_ref": "bench", "query": "q(x) :- T(x)"}
        for label in ("cold miss", "warm hit", "warm hit (repeat)"):
            seconds, (status, payload) = timed(
                lambda: call(base, "/v1/query", body))
            assert status == 200 and payload["ok"]
            rows.append((label, payload["data"]["cache"],
                         len(payload["data"]["disjuncts"])
                         if isinstance(payload["data"]["disjuncts"], list)
                         else payload["data"]["disjuncts"], seconds))
    print()
    emit("Query answering — POST /v1/query by schema_ref (result cache)",
         ["request", "cache", "disjuncts", "seconds"], rows)


def registry_revalidation() -> None:
    from repro.core.formulas import Clause, Formula, Lit
    from repro.core.schema import ClassDef, Schema
    from repro.engine import Pipeline, SchemaDelta
    from repro.parser.printer import render_schema
    from repro.reasoner.satisfiability import Reasoner as _Reasoner
    from repro.registry import SchemaRegistry

    # Pin the exact LP core so the cold and delta sides solve with the
    # same arithmetic: "auto" flips between exact and float by system
    # size, which would compare backends, not pipelines.
    config = EngineConfig(lp_backend="exact")

    def single_cluster_edit(schema):
        names = sorted(d.name for d in schema.class_definitions
                       if d.name.startswith("K0_"))
        target = names[-1]
        extra = Clause((Lit("K0_1"),))
        definitions = []
        for definition in schema.class_definitions:
            if definition.name != target:
                definitions.append(definition)
                continue
            clauses = definition.isa.clauses if definition.isa else ()
            definitions.append(ClassDef(
                target, Formula(clauses + (extra,)),
                definition.attributes, definition.participates))
        return Schema(definitions)

    def verdicts(pipeline):
        reasoner = _Reasoner.from_pipeline(pipeline)
        return {name: reasoner.is_satisfiable(name)
                for name in sorted(pipeline.schema.class_symbols)}

    # Single-cluster edits against wide multi-cluster schemas: the delta
    # path re-enumerates only the dirty cluster and solves only its Ψ_S
    # blocks; the cold side repeats the full Phase-1/Phase-2 build.
    rows = []
    for n_clusters, cluster_size, seed in ((8, 4, 7), (10, 5, 3),
                                           (12, 6, 1)):
        old = clustered_schema(n_clusters, cluster_size, seed=seed)
        pipeline = Pipeline(old, config)
        _ = pipeline.support  # warm build, also the artifact source
        artifact = pipeline.compile()
        new = single_cluster_edit(old)
        delta = SchemaDelta.between(old, new)

        def run_delta():
            revalidated = Pipeline.recompile_from(artifact, delta, config)
            _ = revalidated.support
            return revalidated

        def run_cold():
            cold = Pipeline(new, config)
            _ = cold.support
            return cold

        delta_s = best_of(run_delta, rounds=3)
        cold_s = best_of(run_cold, rounds=3)
        delta_pipeline = run_delta()
        assert verdicts(delta_pipeline) == verdicts(run_cold())
        stats = delta_pipeline.delta_stats
        blocks_total = (stats["support_blocks_reused"]
                        + stats["support_blocks_solved"])
        rows.append((f"{stats['clusters_total']}x{cluster_size}",
                     cold_s, delta_s,
                     cold_s / delta_s if delta_s else 0.0,
                     f"{stats['clusters_reused']}/{stats['clusters_total']}",
                     f"{stats['support_blocks_reused']}/{blocks_total}"))
    emit("Registry revalidation — single-cluster edit vs cold rebuild "
         "(exact LP core, identical verdicts)",
         ["clusters", "cold s", "delta s", "speedup", "clusters reused",
          "blocks reused/total"], rows)

    # End-to-end through the registry: put v1 (cold validation), put an
    # edited v2 (delta revalidation), put v2 again (fingerprint dedupe).
    old = clustered_schema(8, 4, seed=7)
    new = single_cluster_edit(old)
    rows = []
    with SchemaSession(config) as session:
        registry = SchemaRegistry(session)
        for label, source in (("put v1 (fresh)", render_schema(old)),
                              ("put v2 (delta)", render_schema(new)),
                              ("put v2 again (unchanged)",
                               render_schema(new))):
            seconds, (version, report) = timed(
                lambda source=source: registry.put("wide", source))
            rows.append((label, version.version, report.mode,
                         f"{report.clusters_reused}"
                         f"/{report.clusters_total}",
                         seconds))
    print()
    emit("Registry revalidation — SchemaRegistry.put end to end",
         ["operation", "version", "mode", "clusters reused", "seconds"],
         rows)


def query_service() -> None:
    import json as json_module
    import threading
    import urllib.error
    import urllib.request

    import loadgen
    from repro.parser.printer import render_schema
    from repro.service import ReproService, ServiceConfig

    def post(base, body, headers=None):
        request = urllib.request.Request(
            base + "/v1/satisfiable",
            data=json_module.dumps(body).encode(),
            headers=headers or {}, method="POST")
        try:
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json_module.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json_module.loads(error.read())

    # Warm-cache throughput: after the one cold miss, every repeat of the
    # same (schema fingerprint, formula) pair is answered straight from
    # the result cache on the event-loop fast path — wire overhead is the
    # whole cost.  Driven by the closed-loop generator in loadgen.py:
    # serial lockstep on one keep-alive connection, then concurrently
    # over pipelined connections; the concurrent drive is best-of-3 and
    # must clear 10x the PR 5 threaded front end's 1,289.955 req/s.
    baseline_rps = 1289.955
    body = {"schema": "class A isa not B endclass class B endclass",
            "formula": "A and not B"}
    with ReproService(ServiceConfig(port=0)) as service:
        cold = loadgen.run_load(service.host, service.port, connections=1,
                                requests_per_connection=1, body=body)
        serial = loadgen.run_load(service.host, service.port,
                                  connections=1,
                                  requests_per_connection=200, body=body)
        concurrent = None
        for _ in range(3):
            trial = loadgen.run_load(
                service.host, service.port, connections=8,
                requests_per_connection=1000, pipeline=32, body=body,
                validate="first")
            if concurrent is None or trial.rps > concurrent.rps:
                concurrent = trial
        stats = service.cache.stats()
    emit("Query service — warm-cache throughput (POST /v1/satisfiable, "
         "keep-alive)",
         ["drive", "requests", "req/s", "p50 ms", "p99 ms",
          "vs threaded baseline"],
         [("PR 5 threaded baseline (1 conn, Connection: close)", "-",
           baseline_rps, "-", "-", "1.0x"),
          ("serial (1 conn, lockstep)", serial.requests, serial.rps,
           serial.percentile_ms(0.50), serial.percentile_ms(0.99),
           f"{serial.rps / baseline_rps:.1f}x"),
          ("concurrent (8 conns, pipeline 32, best of 3)",
           concurrent.requests, concurrent.rps,
           concurrent.percentile_ms(0.50), concurrent.percentile_ms(0.99),
           f"{concurrent.rps / baseline_rps:.1f}x")])
    assert cold.statuses == {200: 1}
    assert serial.statuses == {200: serial.requests}
    assert concurrent.statuses == {200: concurrent.requests}
    assert serial.envelope_violations == 0
    assert concurrent.envelope_violations == 0
    assert stats.misses == 1
    assert concurrent.rps >= 10.0 * baseline_rps, (
        f"{concurrent.rps:.0f} req/s is below 10x the threaded baseline")

    # Budget isolation over HTTP: a 50 ms X-Repro-Timeout-Ms against the
    # Theorem 4.1 EXPTIME reduction comes back 504 with partial stats,
    # while a concurrent trivial query is answered normally.
    reduction = machine_to_schema(parity_machine(), (0, 1, 0, 1), 6, 6)
    hard_body = {"schema": render_schema(reduction.schema),
                 "formula": str(reduction.target)}
    with ReproService(ServiceConfig(port=0)) as service:
        base = f"http://{service.host}:{service.port}"
        outcome: dict = {}

        def slow():
            outcome["hard"] = post(base, hard_body,
                                   headers={"X-Repro-Timeout-Ms": "50"})

        thread = threading.Thread(target=slow)
        wall_s, _ = timed(lambda: (
            thread.start(),
            outcome.__setitem__("easy", post(base, body)),
            thread.join(timeout=10)))
    hard_status, hard_payload = outcome["hard"]
    easy_status, easy_payload = outcome["easy"]
    print()
    emit("Query service — 50 ms budget vs EXPTIME reduction over HTTP",
         ["query", "status", "error code", "wall s"],
         [("EXPTIME reduction", hard_status,
           hard_payload.get("error", {}).get("code", "-"), wall_s),
          ("trivial neighbor", easy_status, "-", wall_s)])
    assert hard_status == 504 and easy_status == 200
    assert hard_payload["error"]["sysexit"] == 75
    assert easy_payload["data"]["verdict"] is True


def lp_backends() -> None:
    from repro.core.cardinality import Card
    from repro.core.formulas import Lit
    from repro.core.schema import Attr, ClassDef, Schema
    from repro.linear.backends import SparseExactBackend
    from repro.obs.tracer import Tracer
    from repro.workloads.generators import hierarchy_schema

    def cluster(i: int, fan: int):
        a, b = f"A{i}", f"B{i}"
        return [
            ClassDef(a, isa=~Lit(b),
                     attributes=[Attr(f"link{i}", Card(fan, fan), b)]),
            ClassDef(b, attributes=[Attr(inv(f"link{i}"), Card(1, 1), a)]),
        ]

    rows = []
    # 10x the committed Theorem 4.3 series (which stops at 32 clusters).
    for n_clusters in (8, 32, 64, 128, 320):
        classes = []
        for i in range(n_clusters):
            classes.extend(cluster(i, fan=2 + (i % 3)))
        system = build_system(build_expansion(Schema(classes)))
        sparse_s, sparse = timed(
            lambda s=system: acceptable_support(s, backend="exact-sparse"))
        dense_s, dense = timed(
            lambda s=system: acceptable_support(s, backend="exact"))
        assert sparse.support == dense.support
        rows.append((n_clusters, system.size(), system.n_unknowns(),
                     dense_s, sparse_s, round(dense_s / max(sparse_s, 1e-9), 1)))
    emit(
        "LP backends — dense exact vs sparse fraction-free on Psi_S",
        ["clusters", "|Psi_S|", "unknowns", "exact s", "exact-sparse s",
         "speedup"], rows)

    rows = []
    for depth, branching in ((3, 3), (4, 3), (5, 3)):
        schema = hierarchy_schema(depth, branching, with_attributes=True,
                                  seed=9)
        system = build_system(build_expansion(schema))
        lp_s, lp_solution = timed(lambda s=system: SparseExactBackend().solve(
            s, list(range(s.n_unknowns()))))
        tracer = Tracer()
        closed_s, closed = timed(lambda s=system: acceptable_support(
            s, backend="exact-sparse", hierarchy=True, tracer=tracer))
        assert closed.backend_used == "closed-form"
        assert tracer.counters.get("lp.pivots", 0) == 0
        rows.append((f"{depth}x{branching}", system.size(),
                     lp_solution.metrics.get("lp.pivots", 0), lp_s, closed_s))
    emit(
        "Section 4.4 closed form vs sparse LP on hierarchies",
        ["hierarchy", "|Psi_S|", "LP pivots", "sparse LP s",
         "closed form s"], rows)


SECTIONS = [
    ("Figures 1 & 2", figures),
    ("Theorem 4.1 (EXPTIME-hardness shape)", theorem41),
    ("Theorem 4.2 (NP-hardness shape)", theorem42),
    ("Theorem 4.3 (polynomial linear phase)", theorem43),
    ("Theorem 4.4 (exponential upper bound)", theorem44),
    ("Theorem 4.5 (arity reduction)", theorem45),
    ("Theorem 4.6 / Section 4.3 (strategies)", theorem46),
    ("Section 4.4 (hierarchies)", section44),
    ("Theorem 3.3 constructive (synthesis)", synthesis),
    ("Expansion pipeline (indexes, pruning, incremental queries)",
     expansion_pipeline),
    ("Session reuse (SchemaSession warm vs cold)", session_reuse),
    ("Parallel batch (executor, deadlines)", parallel_batch),
    ("Query service (admission, result cache, budgets)", query_service),
    ("Query answering (CQ rewriting, certain answers, /v1/query)",
     query_answering),
    ("Registry revalidation (delta rebuild vs cold)", registry_revalidation),
    ("LP backends (sparse fraction-free vs dense exact, Section 4.4)",
     lp_backends),
    ("Ablations", ablations),
]


def main(argv: Optional[list] = None) -> None:
    parser = argparse.ArgumentParser(
        description="Regenerate the experiment tables for EXPERIMENTS.md.")
    parser.add_argument(
        "--only", metavar="KEYWORD",
        help="run only sections whose title contains KEYWORD "
             "(case-insensitive)")
    parser.add_argument(
        "--json", metavar="PATH",
        help="additionally write every table to PATH as JSON "
             "(e.g. BENCH_expansion.json)")
    parser.add_argument(
        "--profile", action="store_true",
        help="trace every section through the observability bus and print "
             "a per-stage breakdown after each one")
    parser.add_argument(
        "--trace-out", metavar="PATH",
        help="write the sections' versioned JSON-lines traces to PATH "
             "(one header per section)")
    args = parser.parse_args(argv)

    sections = SECTIONS
    if args.only:
        keyword = args.only.lower()
        sections = [(title, runner) for title, runner in SECTIONS
                    if keyword in title.lower()]
        if not sections:
            parser.error(f"no section title contains {args.only!r}")

    global RECORDER
    if args.json:
        try:
            Path(args.json).touch()  # fail before the sections run, not after
        except OSError as exc:
            parser.error(f"cannot write {args.json}: {exc}")
        RECORDER = Recorder(command="run_experiments.py "
                            + " ".join(argv if argv is not None
                                       else sys.argv[1:]))

    tracing = args.profile or args.trace_out
    trace_lines: list = []
    for title, runner in sections:
        if RECORDER is not None:
            RECORDER.start_section(title)
        print("=" * 72)
        print(title)
        print("=" * 72)
        if tracing:
            from repro.obs.tracer import Tracer, use_tracer

            # One fresh tracer per section, installed as the ambient tracer:
            # every Pipeline/SchemaSession the section constructs picks it up
            # without the section code knowing about tracing at all.
            tracer = Tracer()
            with use_tracer(tracer):
                runner()
            if RECORDER is not None:
                RECORDER.record_trace(tracer.snapshot())
            if args.trace_out:
                trace_lines.extend(tracer.jsonl_lines())
            if args.profile:
                totals: dict = {}
                for record in tracer.spans:
                    totals[record.name] = (totals.get(record.name, 0.0)
                                           + record.duration)
                for name in sorted(totals):
                    print(f"  [trace] {name}: {totals[name] * 1000:.3f} ms")
                for name, value in sorted(tracer.counters.items()):
                    print(f"  [trace] {name} = {value}")
        else:
            runner()
        print()
    if args.trace_out:
        Path(args.trace_out).write_text(
            "".join(f"{line}\n" for line in trace_lines), encoding="utf-8")
        print(f"wrote {args.trace_out}")
    if RECORDER is not None:
        RECORDER.dump(args.json)
        print(f"wrote {args.json}")


if __name__ == "__main__":
    main()
