"""Experiment "Theorem 4.5": arity reduction kills the compound-relation
blow-up.

The number of compound relations is |compound classes per role|^K for a
K-ary relation; reification replaces it with K binary relations whose
compound counts are quadratic.  The benchmark builds K-ary booking-style
schemas for growing K, measures the expansion with and without the
transformation, and asserts (a) satisfiability is preserved and (b) the
reified expansion wins by a growing factor.
"""

import pytest

from benchlib import render_table
from repro.core.cardinality import Card
from repro.core.formulas import Clause, Formula, Lit
from repro.core.schema import ClassDef, Part, RelationDef, RoleClause, RoleLiteral, Schema
from repro.expansion.expansion import build_expansion
from repro.reasoner.satisfiability import Reasoner
from repro.reasoner.transform import reify_nonbinary_relations


def kary_schema(arity: int, variants: int = 2) -> Schema:
    """A K-ary relation where each role's family has ``variants`` disjoint
    subclasses — each role admits ``variants + 1`` compound classes, so the
    naive expansion holds ``(variants + 1)^K`` compound relations."""
    classes: list[ClassDef] = []
    roles = []
    constraints = []
    families = [f"F{k}" for k in range(arity)]
    for k, family in enumerate(families):
        role = f"r{k}"
        roles.append(role)
        disjoint_from_others = Formula(tuple(
            Clause((Lit(other, positive=False),))
            for other in families if other != family))
        classes.append(ClassDef(
            family, disjoint_from_others,
            participates=[Part("Link", role, Card(0, 3))]))
        subs = [f"{family}v{i}" for i in range(variants)]
        for sub in subs:
            isa = Formula((Clause((Lit(family),)),)) if len(subs) == 1 else (
                Formula(tuple([Clause((Lit(family),))] + [
                    Clause((Lit(other, positive=False),))
                    for other in subs if other != sub])))
            classes.append(ClassDef(sub, isa))
        constraints.append(RoleClause(RoleLiteral(role, family)))
    relation = RelationDef("Link", roles, constraints)
    return Schema(classes, [relation])


@pytest.mark.experiment("theorem45")
def test_expansion_vs_arity(benchmark):
    def measure():
        rows = []
        for arity in (2, 3, 4, 5):
            schema = kary_schema(arity)
            before = build_expansion(schema)
            before_rel = sum(len(v) for v in before.compound_relations.values())
            result = reify_nonbinary_relations(schema)
            after = build_expansion(result.schema)
            after_rel = sum(len(v) for v in after.compound_relations.values())
            rows.append((arity, before_rel, before.size(),
                         after_rel, after.size()))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(render_table(
        "Theorem 4.5 — K-ary expansion, original vs reified",
        ["arity K", "K-ary compound rels", "expansion",
         "binary compound rels", "reified expansion"], rows))

    # Binary case untouched; from arity 3 on the reified expansion wins and
    # the advantage widens with K (the crossover the theorem predicts).
    assert rows[0][1] == rows[0][3] or rows[0][4] <= rows[0][2]
    gaps = []
    for arity, before_rel, before_size, after_rel, after_size in rows[1:]:
        assert after_rel < before_rel
        gaps.append(before_rel / max(after_rel, 1))
    assert gaps == sorted(gaps), f"advantage must widen with K: {gaps}"


@pytest.mark.experiment("theorem45")
def test_satisfiability_preserved_under_reification(benchmark):
    schema = kary_schema(4)
    result = reify_nonbinary_relations(schema)

    def verdicts():
        before = Reasoner(schema)
        after = Reasoner(result.schema)
        return {name: (before.is_satisfiable(name), after.is_satisfiable(name))
                for name in sorted(schema.class_symbols)}

    outcome = benchmark.pedantic(verdicts, rounds=1, iterations=1)
    for name, (left, right) in outcome.items():
        assert left == right, name
